//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` print paper-shaped reports:
//!
//! * `report_table1` — Table 1 (dynamic + static verdicts vs. the paper's).
//! * `report_fig10` — Figure 10 (monitoring slowdown across input sizes
//!   for the six workloads under unchecked / continuation-mark /
//!   imperative configurations).
//! * `report_divergence` — §5.1.2 (steps and time to catch divergence).
//!
//! The Criterion benches in `benches/` measure the same configurations
//! with statistical rigor; the reports favor breadth and readability.
//!
//! # The `BENCH_fig10.json` trajectory file
//!
//! `report_fig10` additionally writes a machine-readable summary to
//! `BENCH_fig10.json` at the repository root so successive PRs can track
//! the performance trajectory. The schema (`sct-fig10/5`):
//!
//! ```json
//! {
//!   "schema": "sct-fig10/5",
//!   "fast": false,
//!   "scale": 1,
//!   "reps": 3,
//!   "entries": [
//!     { "workload": "sum", "setup": "imperative", "n": 8000,
//!       "median_ns": 5958000, "slowdown": 1.24 }
//!   ],
//!   "planning": [
//!     { "workload": "sum", "plan_ms": 1.207, "plan_warm_ms": 0.164 }
//!   ],
//!   "eval": [
//!     { "workload": "sum", "n": 128000, "reference_ns": 114740000,
//!       "vm_ns": 18020000, "speedup": 6.37, "steps_per_sec": 92000000,
//!       "pic_hits": 0, "pic_misses": 0, "pic_hit_rate": 1.0 }
//!   ]
//! }
//! ```
//!
//! One entry per *workload × setup × input size*. `median_ns` is the
//! median wall time in nanoseconds of `reps` timed entry calls (setup,
//! compilation, and the hybrid pre-pass excluded); `slowdown` is
//! `median_ns` divided by the unchecked median at the same
//! `(workload, n)` — `1.0` for the unchecked rows themselves. `fast`
//! records whether the sweep ran in the CI smoke mode, whose numbers are
//! indicative only. Workload ids and setup labels match [`Setup::label`]
//! and `sct_corpus::workloads::fig10`.
//!
//! `planning` has one entry per workload: `plan_ms` is the median
//! wall-clock cost of the hybrid pre-pass from a cold [`PlanCache`]
//! (fresh interner, empty LJB memo), `plan_warm_ms` the median cost of
//! planning the *same program again in the same process* (the memoized
//! path a long-running `sct serve` daemon or repeated library use pays).
//! The perf trajectory therefore tracks planning cost — the paper's
//! PSPACE-hard pre-pass — alongside run cost, and the warm column pins
//! the amortization claim: warm must stay well under cold.
//!
//! `eval` has one entry per workload, measured at the workload's largest
//! sweep size under the *unchecked* standard semantics: `reference_ns` is
//! the retained reference tree-walker (`sct_interp::reference`, the
//! evaluator every PR before the flat-IR VM measured against),
//! `vm_ns` the dispatch VM, `speedup` their ratio, and `steps_per_sec`
//! the VM's instruction throughput during the timed call. This is the
//! row that keeps the evaluator win itself — not just monitoring
//! overhead — in the trajectory. `pic_hits`/`pic_misses` are the inline
//! cache counters from one *hybrid* run at the same size (PICs are only
//! consulted while monitoring is active, so the unchecked timing runs
//! cannot observe them), and `pic_hit_rate` is their ratio — vacuously
//! `1.0` for workloads whose call sites are all statically bound.
//!
//! Schema history: `sct-fig10/5` switched the hybrid column to the full
//! production monitor config (loop-entry designation + exponential
//! backoff on the residual) and added the `pic_hits`/`pic_misses`/
//! `pic_hit_rate` columns to `eval` rows; `sct-fig10/4` added the top-level `"eval"` array (the
//! reference-walker vs. flat-IR VM unchecked baseline); `sct-fig10/3`
//! added the top-level `"planning"` array (cold vs. warm pre-pass cost
//! per workload); `sct-fig10/2` added the `"hybrid"` setup rows (the
//! hybrid enforcement ablation — statically discharged functions skip the
//! monitor); the per-entry shape is unchanged from `sct-fig10/1`.
//!
//! # Sweep-control flags
//!
//! `report_fig10` accepts:
//!
//! * `--fast` — CI smoke mode: the smallest size per workload and one rep
//!   (overridable with `--reps`); also recorded in the JSON as
//!   `"fast": true`.
//! * `--only ID` — restrict the sweep to one workload id (e.g. `--only
//!   ack`); unknown ids list the valid ones and exit 2. The JSON then
//!   contains only that workload's entries, so don't commit a `--only`
//!   artifact as the repo-root trajectory file.
//! * `--scale N` — multiply every input size by `N`.
//! * `--reps N` — timed repetitions per point (median reported).
//! * `--out PATH` — write the JSON somewhere other than the repo root.

use sct_cache::MemStore;
use sct_core::monitor::{BackoffPolicy, TableStrategy};
use sct_core::plan::EnforcementPlan;
use sct_corpus::workloads::Workload;
use sct_interp::{reference, EvalError, Machine, MachineConfig, SemanticsMode, Stats, Value};
use sct_ir::CompiledProgram;
use sct_lang::ast::Program;
use sct_symbolic::{plan_program, plan_program_incremental, PlanCache, PlanConfig, SymDomain};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// The Figure-10 configurations, plus the hybrid ablation column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setup {
    /// Standard semantics, no monitoring.
    Unchecked,
    /// Monitored with the persistent continuation-mark table.
    ContinuationMark,
    /// Monitored with the imperative table plus restore frames.
    Imperative,
    /// The full production stack: the hybrid enforcement plan (statically
    /// discharged functions skip the monitor) *plus* the §5 overhead
    /// reductions for the residual — loop-entry-only designation and
    /// exponential backoff. Workloads the verifier proves (Table 1 rows
    /// where the static column passes) land at ~unchecked speed; residual
    /// workloads pay the amortized monitor, not the every-call ablation
    /// cost that the `imperative` column isolates.
    Hybrid,
}

impl Setup {
    /// All setups, in the figure's legend order (hybrid last).
    pub fn all() -> [Setup; 4] {
        [
            Setup::Unchecked,
            Setup::ContinuationMark,
            Setup::Imperative,
            Setup::Hybrid,
        ]
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Setup::Unchecked => "unchecked",
            Setup::ContinuationMark => "continuation-mark",
            Setup::Imperative => "imperative",
            Setup::Hybrid => "hybrid",
        }
    }
}

/// A workload compiled once, runnable many times.
pub struct CompiledWorkload {
    /// The workload metadata (entry name, input builder, checker).
    pub workload: Workload,
    /// The compiled program.
    pub program: Program,
    /// The hybrid enforcement plan, computed once at compile time (what
    /// the [`Setup::Hybrid`] runs consume). Pre-pass cost is setup, not
    /// run time — exactly as `sct hybrid` amortizes it over a whole run.
    pub plan: Rc<EnforcementPlan>,
    /// The flat-IR image without a plan (unchecked / cm / imperative
    /// setups), compiled once and shared across repetitions — the same
    /// amortization `sct serve` performs.
    pub code: Rc<CompiledProgram>,
    /// The plan-directed flat-IR image (hybrid setup): call sites bake in
    /// the plan's skip/guarded/monitored decisions.
    pub code_hybrid: Rc<CompiledProgram>,
}

/// Maps a corpus [`sct_corpus::Domain`] onto the verifier's domain.
pub fn sym_domain(d: sct_corpus::Domain) -> SymDomain {
    match d {
        sct_corpus::Domain::Nat => SymDomain::Nat,
        sct_corpus::Domain::Pos => SymDomain::Pos,
        sct_corpus::Domain::Int => SymDomain::Int,
        sct_corpus::Domain::List => SymDomain::List,
        sct_corpus::Domain::Any => SymDomain::Any,
    }
}

/// The [`PlanConfig`] a workload is planned under: the default ladder,
/// with the workload's declared signature pinned when it has one. Shared
/// by [`CompiledWorkload::new`] and the planning-cost measurements so the
/// timed pre-pass is exactly the one the hybrid column runs.
pub fn plan_config_for(workload: &Workload) -> PlanConfig {
    let mut plan_config = PlanConfig::default();
    if let Some((domains, result)) = workload.sig {
        plan_config.signatures.insert(
            workload.entry.to_string(),
            (
                domains.iter().copied().map(sym_domain).collect(),
                sym_domain(result),
            ),
        );
    }
    plan_config
}

impl CompiledWorkload {
    /// Compiles a Figure-10 workload and runs the hybrid pre-pass over it
    /// (pinning the workload's declared signature, when it has one).
    ///
    /// # Panics
    ///
    /// Panics when the workload source fails to compile (corpus bug).
    pub fn new(workload: Workload) -> CompiledWorkload {
        let program = sct_lang::compile_program(&workload.source)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", workload.id));
        let plan_config = plan_config_for(&workload);
        let plan = Rc::new(plan_program(&program, &plan_config));
        let code = Rc::new(sct_ir::compile(&program, None));
        let code_hybrid = Rc::new(sct_ir::compile(&program, Some(&plan)));
        CompiledWorkload {
            workload,
            program,
            plan,
            code,
            code_hybrid,
        }
    }

    /// Measures the hybrid pre-pass: `(cold, warm)` wall time. Cold plans
    /// through an empty decision store (every `define` runs the full
    /// symbolic exploration); warm immediately re-plans the same program
    /// through the now-populated store — all hits, zero exploration, the
    /// path a `--cache-dir` re-invocation or the `sct serve` daemon pays.
    ///
    /// # Panics
    ///
    /// Panics when the warm replay is not structurally identical to the
    /// cold plan, or when any define misses on the warm pass — either
    /// would falsify the incrementality the cache subsystem promises.
    pub fn plan_cost_once(&self) -> (Duration, Duration) {
        let config = plan_config_for(&self.workload);
        let mut cache = PlanCache::new();
        let mut store = MemStore::new();
        let t0 = Instant::now();
        let (cold_plan, cold_stats) =
            plan_program_incremental(&self.program, &config, &mut cache, &mut store);
        let cold = t0.elapsed();
        let t1 = Instant::now();
        let (warm_plan, warm_stats) =
            plan_program_incremental(&self.program, &config, &mut cache, &mut store);
        let warm = t1.elapsed();
        assert_eq!(
            (cold_stats.hits(), warm_stats.misses()),
            (0, 0),
            "{}: cold must all-miss and warm must all-hit",
            self.workload.id
        );
        assert!(
            cold_plan.structurally_eq(&warm_plan),
            "{}: warm re-plan diverged from cold",
            self.workload.id
        );
        (cold, warm)
    }

    fn config(&self, setup: Setup) -> MachineConfig {
        let (mode, strategy) = match setup {
            Setup::Unchecked => (SemanticsMode::Standard, TableStrategy::Imperative),
            Setup::ContinuationMark => (SemanticsMode::Monitored, TableStrategy::ContinuationMark),
            Setup::Imperative | Setup::Hybrid => {
                (SemanticsMode::Monitored, TableStrategy::Imperative)
            }
        };
        let mut config = MachineConfig {
            mode,
            order: self.workload.order.handle(),
            plan: (setup == Setup::Hybrid).then(|| self.plan.clone()),
            ..MachineConfig::monitored(strategy)
        };
        if setup == Setup::Hybrid {
            // The hybrid column benchmarks the full production stack: the
            // residual that the plan cannot discharge runs under the §5
            // overhead reductions (loop-entry designation + exponential
            // backoff), not the every-call formal semantics that the
            // `imperative` column isolates.
            config.monitor = config
                .monitor
                .with_loop_entries_only(true)
                .with_backoff(BackoffPolicy::Exponential { factor: 2 });
        }
        config
    }

    /// Runs once at size `n`, returning the wall time of the entry call
    /// (setup excluded) and the machine stats. The flat-IR image is
    /// reused across calls (compiled once in [`CompiledWorkload::new`]).
    ///
    /// # Panics
    ///
    /// Panics if evaluation fails or the result check rejects the output.
    pub fn run_once(&self, n: u64, setup: Setup) -> (Duration, Stats) {
        let code = match setup {
            Setup::Hybrid => self.code_hybrid.clone(),
            _ => self.code.clone(),
        };
        let mut m = Machine::with_code(&self.program, code, self.config(setup));
        m.run()
            .unwrap_or_else(|e| panic!("{}: program body failed: {e}", self.workload.id));
        let f = m
            .global(self.workload.entry)
            .unwrap_or_else(|| panic!("{}: no entry {}", self.workload.id, self.workload.entry));
        let args = (self.workload.make_args)(n);
        let start = Instant::now();
        let v = m
            .call(f, args)
            .unwrap_or_else(|e| panic!("{} (n={n}, {setup:?}): {e}", self.workload.id));
        let elapsed = start.elapsed();
        assert!(
            (self.workload.check)(n, &v),
            "{} (n={n}, {setup:?}): wrong result {}",
            self.workload.id,
            v.to_write_string()
        );
        (elapsed, m.stats)
    }

    /// Runs once at size `n` under the *unchecked* standard semantics on
    /// the retained reference tree-walker — the "before" of the `eval`
    /// trajectory rows, so `BENCH_fig10.json` pins the VM win against the
    /// machine it replaced.
    ///
    /// # Panics
    ///
    /// As [`CompiledWorkload::run_once`].
    pub fn run_once_reference(&self, n: u64) -> (Duration, Stats) {
        let mut m = reference::Machine::new(&self.program, MachineConfig::standard());
        m.run()
            .unwrap_or_else(|e| panic!("{}: program body failed: {e}", self.workload.id));
        let f = m
            .global(self.workload.entry)
            .unwrap_or_else(|| panic!("{}: no entry {}", self.workload.id, self.workload.entry));
        let args = (self.workload.make_args)(n);
        let start = Instant::now();
        let v = m
            .call(f, args)
            .unwrap_or_else(|e| panic!("{} (n={n}, reference): {e}", self.workload.id));
        let elapsed = start.elapsed();
        assert!(
            (self.workload.check)(n, &v),
            "{} (n={n}, reference): wrong result {}",
            self.workload.id,
            v.to_write_string()
        );
        (elapsed, m.stats)
    }
}

/// Runs a diverging corpus program under monitoring, returning the time
/// and machine steps until the size-change error fires.
///
/// # Panics
///
/// Panics if the program is *not* caught (that would falsify §5.1.2).
pub fn time_to_detection(
    program: &sct_corpus::CorpusProgram,
    strategy: TableStrategy,
) -> (Duration, u64) {
    let prog = sct_lang::compile_program(program.source).expect("diverging program compiles");
    let config = MachineConfig {
        mode: SemanticsMode::Monitored,
        order: program.order.handle(),
        ..MachineConfig::monitored(strategy)
    };
    let mut m = Machine::new(&prog, config);
    let start = Instant::now();
    let r = m.run();
    let elapsed = start.elapsed();
    match r {
        Err(EvalError::Sc(_)) => (elapsed, m.stats.steps),
        other => panic!("{}: expected errorSC, got {other:?}", program.id),
    }
}

/// One measured point of the Figure-10 sweep, as serialized into
/// `BENCH_fig10.json` (see the crate docs for the schema).
#[derive(Debug, Clone)]
pub struct Fig10Entry {
    /// Workload id (`"sum"`, `"ack"`, `"interp-msort"`, …).
    pub workload: &'static str,
    /// Setup label (one of [`Setup::label`]).
    pub setup: &'static str,
    /// Input size.
    pub n: u64,
    /// Median wall time of the timed entry calls, in nanoseconds.
    pub median_ns: u128,
    /// `median_ns` relative to the unchecked median at the same
    /// `(workload, n)`.
    pub slowdown: f64,
}

/// Cold vs. warm pre-pass cost for one workload, as serialized into the
/// `planning` array of `BENCH_fig10.json` (see the crate docs).
#[derive(Debug, Clone)]
pub struct PlanTiming {
    /// Workload id.
    pub workload: &'static str,
    /// Median cold planning cost (fresh [`PlanCache`]), milliseconds.
    pub plan_ms: f64,
    /// Median warm re-planning cost (same process, populated cache),
    /// milliseconds.
    pub plan_warm_ms: f64,
}

/// Unchecked-baseline evaluator comparison for one workload: the retained
/// reference tree-walker ("before") against the flat-IR dispatch VM
/// ("after") at the workload's largest sweep size. Serialized into the
/// `eval` array of `BENCH_fig10.json` so the perf trajectory captures the
/// evaluator win itself, independent of monitoring.
#[derive(Debug, Clone)]
pub struct EvalTiming {
    /// Workload id.
    pub workload: &'static str,
    /// Input size the comparison ran at.
    pub n: u64,
    /// Median reference tree-walker wall time, nanoseconds.
    pub reference_ns: u128,
    /// Median flat-IR VM wall time, nanoseconds.
    pub vm_ns: u128,
    /// `reference_ns / vm_ns`.
    pub speedup: f64,
    /// VM dispatch throughput: instructions per second during the timed
    /// call (steps from [`Stats::steps`] over the median wall time).
    pub steps_per_sec: f64,
    /// Inline-cache hits on `Generic` call sites during a hybrid run at
    /// the same size ([`Stats::pic_hits`]).
    pub pic_hits: u64,
    /// Inline-cache misses during the same hybrid run
    /// ([`Stats::pic_misses`]).
    pub pic_misses: u64,
    /// `pic_hits / (pic_hits + pic_misses)`, vacuously `1.0` when the
    /// workload has no generic-site traffic (every call site is
    /// statically bound, so no PIC is ever consulted).
    pub pic_hit_rate: f64,
}

/// Serializes the sweep into the `sct-fig10/5` JSON document (see the
/// crate docs for the schema and its history). Hand-rolled because the
/// workspace builds offline (no serde); all strings involved are static
/// identifiers needing no escaping.
pub fn fig10_json(
    entries: &[Fig10Entry],
    planning: &[PlanTiming],
    eval: &[EvalTiming],
    fast: bool,
    scale: u64,
    reps: usize,
) -> String {
    let mut out =
        String::with_capacity(160 + entries.len() * 96 + planning.len() * 72 + eval.len() * 128);
    out.push_str("{\n  \"schema\": \"sct-fig10/5\",\n");
    out.push_str(&format!("  \"fast\": {fast},\n"));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"setup\": \"{}\", \"n\": {}, \
             \"median_ns\": {}, \"slowdown\": {:.4} }}{}\n",
            e.workload,
            e.setup,
            e.n,
            e.median_ns,
            e.slowdown,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"planning\": [\n");
    for (i, p) in planning.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"plan_ms\": {:.4}, \"plan_warm_ms\": {:.4} }}{}\n",
            p.workload,
            p.plan_ms,
            p.plan_warm_ms,
            if i + 1 < planning.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"eval\": [\n");
    for (i, e) in eval.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"n\": {}, \"reference_ns\": {}, \"vm_ns\": {}, \
             \"speedup\": {:.4}, \"steps_per_sec\": {:.0}, \"pic_hits\": {}, \
             \"pic_misses\": {}, \"pic_hit_rate\": {:.4} }}{}\n",
            e.workload,
            e.n,
            e.reference_ns,
            e.vm_ns,
            e.speedup,
            e.steps_per_sec,
            e.pic_hits,
            e.pic_misses,
            e.pic_hit_rate,
            if i + 1 < eval.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Default output path for `BENCH_fig10.json`: the repository root,
/// located relative to this crate's manifest so `cargo run` works from any
/// working directory.
pub fn fig10_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_fig10.json")
}

/// Default output path for `BENCH_serve.json` (the `report_serve` load
/// driver's `sct-serve/1` document), repo root as above.
pub fn serve_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json")
}

/// Default output path for `BENCH_plan.json` (the `report_plan` contract
/// summary scaling driver's `sct-plan-bench/1` document), repo root as
/// above.
pub fn plan_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_plan.json")
}

/// Formats a duration in the paper's milliseconds-with-log-axis spirit.
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms < 1.0 {
        format!("{:.3}ms", ms)
    } else if ms < 100.0 {
        format!("{:.2}ms", ms)
    } else {
        format!("{:.0}ms", ms)
    }
}

/// Result checker used by tests: value must be truthy.
pub fn check_truthy(v: &Value) -> bool {
    v.is_truthy()
}

//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` print paper-shaped reports:
//!
//! * `report_table1` — Table 1 (dynamic + static verdicts vs. the paper's).
//! * `report_fig10` — Figure 10 (monitoring slowdown across input sizes
//!   for the six workloads under unchecked / continuation-mark /
//!   imperative configurations).
//! * `report_divergence` — §5.1.2 (steps and time to catch divergence).
//!
//! The Criterion benches in `benches/` measure the same configurations
//! with statistical rigor; the reports favor breadth and readability.

use sct_core::monitor::TableStrategy;
use sct_corpus::workloads::Workload;
use sct_interp::{EvalError, Machine, MachineConfig, SemanticsMode, Stats, Value};
use sct_lang::ast::Program;
use std::time::{Duration, Instant};

/// The three Figure-10 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setup {
    /// Standard semantics, no monitoring.
    Unchecked,
    /// Monitored with the persistent continuation-mark table.
    ContinuationMark,
    /// Monitored with the imperative table plus restore frames.
    Imperative,
}

impl Setup {
    /// All three, in the figure's legend order.
    pub fn all() -> [Setup; 3] {
        [Setup::Unchecked, Setup::ContinuationMark, Setup::Imperative]
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Setup::Unchecked => "unchecked",
            Setup::ContinuationMark => "continuation-mark",
            Setup::Imperative => "imperative",
        }
    }
}

/// A workload compiled once, runnable many times.
pub struct CompiledWorkload {
    /// The workload metadata (entry name, input builder, checker).
    pub workload: Workload,
    /// The compiled program.
    pub program: Program,
}

impl CompiledWorkload {
    /// Compiles a Figure-10 workload.
    ///
    /// # Panics
    ///
    /// Panics when the workload source fails to compile (corpus bug).
    pub fn new(workload: Workload) -> CompiledWorkload {
        let program = sct_lang::compile_program(&workload.source)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", workload.id));
        CompiledWorkload { workload, program }
    }

    fn config(&self, setup: Setup) -> MachineConfig {
        let (mode, strategy) = match setup {
            Setup::Unchecked => (SemanticsMode::Standard, TableStrategy::Imperative),
            Setup::ContinuationMark => (SemanticsMode::Monitored, TableStrategy::ContinuationMark),
            Setup::Imperative => (SemanticsMode::Monitored, TableStrategy::Imperative),
        };
        MachineConfig {
            mode,
            order: self.workload.order.handle(),
            ..MachineConfig::monitored(strategy)
        }
    }

    /// Runs once at size `n`, returning the wall time of the entry call
    /// (setup excluded) and the machine stats.
    ///
    /// # Panics
    ///
    /// Panics if evaluation fails or the result check rejects the output.
    pub fn run_once(&self, n: u64, setup: Setup) -> (Duration, Stats) {
        let mut m = Machine::new(&self.program, self.config(setup));
        m.run()
            .unwrap_or_else(|e| panic!("{}: program body failed: {e}", self.workload.id));
        let f = m
            .global(self.workload.entry)
            .unwrap_or_else(|| panic!("{}: no entry {}", self.workload.id, self.workload.entry));
        let args = (self.workload.make_args)(n);
        let start = Instant::now();
        let v = m
            .call(f, args)
            .unwrap_or_else(|e| panic!("{} (n={n}, {setup:?}): {e}", self.workload.id));
        let elapsed = start.elapsed();
        assert!(
            (self.workload.check)(n, &v),
            "{} (n={n}, {setup:?}): wrong result {}",
            self.workload.id,
            v.to_write_string()
        );
        (elapsed, m.stats)
    }
}

/// Runs a diverging corpus program under monitoring, returning the time
/// and machine steps until the size-change error fires.
///
/// # Panics
///
/// Panics if the program is *not* caught (that would falsify §5.1.2).
pub fn time_to_detection(
    program: &sct_corpus::CorpusProgram,
    strategy: TableStrategy,
) -> (Duration, u64) {
    let prog = sct_lang::compile_program(program.source).expect("diverging program compiles");
    let config = MachineConfig {
        mode: SemanticsMode::Monitored,
        order: program.order.handle(),
        ..MachineConfig::monitored(strategy)
    };
    let mut m = Machine::new(&prog, config);
    let start = Instant::now();
    let r = m.run();
    let elapsed = start.elapsed();
    match r {
        Err(EvalError::Sc(_)) => (elapsed, m.stats.steps),
        other => panic!("{}: expected errorSC, got {other:?}", program.id),
    }
}

/// Formats a duration in the paper's milliseconds-with-log-axis spirit.
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms < 1.0 {
        format!("{:.3}ms", ms)
    } else if ms < 100.0 {
        format!("{:.2}ms", ms)
    } else {
        format!("{:.0}ms", ms)
    }
}

/// Result checker used by tests: value must be truthy.
pub fn check_truthy(v: &Value) -> bool {
    v.is_truthy()
}

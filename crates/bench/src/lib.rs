//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` print paper-shaped reports:
//!
//! * `report_table1` — Table 1 (dynamic + static verdicts vs. the paper's).
//! * `report_fig10` — Figure 10 (monitoring slowdown across input sizes
//!   for the six workloads under unchecked / continuation-mark /
//!   imperative configurations).
//! * `report_divergence` — §5.1.2 (steps and time to catch divergence).
//!
//! The Criterion benches in `benches/` measure the same configurations
//! with statistical rigor; the reports favor breadth and readability.
//!
//! # The `BENCH_fig10.json` trajectory file
//!
//! `report_fig10` additionally writes a machine-readable summary to
//! `BENCH_fig10.json` at the repository root so successive PRs can track
//! the performance trajectory. The schema (`sct-fig10/1`):
//!
//! ```json
//! {
//!   "schema": "sct-fig10/1",
//!   "fast": false,
//!   "scale": 1,
//!   "reps": 3,
//!   "entries": [
//!     { "workload": "sum", "setup": "imperative", "n": 8000,
//!       "median_ns": 5958000, "slowdown": 1.24 }
//!   ]
//! }
//! ```
//!
//! One entry per *workload × setup × input size*. `median_ns` is the
//! median wall time in nanoseconds of `reps` timed entry calls (setup and
//! compilation excluded); `slowdown` is `median_ns` divided by the
//! unchecked median at the same `(workload, n)` — `1.0` for the unchecked
//! rows themselves. `fast` records whether the sweep ran in the CI smoke
//! mode (`--fast`: smallest size per workload, one rep), whose numbers are
//! indicative only. Workload ids and setup labels match
//! [`Setup::label`] and `sct_corpus::workloads::fig10`.

use sct_core::monitor::TableStrategy;
use sct_corpus::workloads::Workload;
use sct_interp::{EvalError, Machine, MachineConfig, SemanticsMode, Stats, Value};
use sct_lang::ast::Program;
use std::time::{Duration, Instant};

/// The three Figure-10 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setup {
    /// Standard semantics, no monitoring.
    Unchecked,
    /// Monitored with the persistent continuation-mark table.
    ContinuationMark,
    /// Monitored with the imperative table plus restore frames.
    Imperative,
}

impl Setup {
    /// All three, in the figure's legend order.
    pub fn all() -> [Setup; 3] {
        [Setup::Unchecked, Setup::ContinuationMark, Setup::Imperative]
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Setup::Unchecked => "unchecked",
            Setup::ContinuationMark => "continuation-mark",
            Setup::Imperative => "imperative",
        }
    }
}

/// A workload compiled once, runnable many times.
pub struct CompiledWorkload {
    /// The workload metadata (entry name, input builder, checker).
    pub workload: Workload,
    /// The compiled program.
    pub program: Program,
}

impl CompiledWorkload {
    /// Compiles a Figure-10 workload.
    ///
    /// # Panics
    ///
    /// Panics when the workload source fails to compile (corpus bug).
    pub fn new(workload: Workload) -> CompiledWorkload {
        let program = sct_lang::compile_program(&workload.source)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", workload.id));
        CompiledWorkload { workload, program }
    }

    fn config(&self, setup: Setup) -> MachineConfig {
        let (mode, strategy) = match setup {
            Setup::Unchecked => (SemanticsMode::Standard, TableStrategy::Imperative),
            Setup::ContinuationMark => (SemanticsMode::Monitored, TableStrategy::ContinuationMark),
            Setup::Imperative => (SemanticsMode::Monitored, TableStrategy::Imperative),
        };
        MachineConfig {
            mode,
            order: self.workload.order.handle(),
            ..MachineConfig::monitored(strategy)
        }
    }

    /// Runs once at size `n`, returning the wall time of the entry call
    /// (setup excluded) and the machine stats.
    ///
    /// # Panics
    ///
    /// Panics if evaluation fails or the result check rejects the output.
    pub fn run_once(&self, n: u64, setup: Setup) -> (Duration, Stats) {
        let mut m = Machine::new(&self.program, self.config(setup));
        m.run()
            .unwrap_or_else(|e| panic!("{}: program body failed: {e}", self.workload.id));
        let f = m
            .global(self.workload.entry)
            .unwrap_or_else(|| panic!("{}: no entry {}", self.workload.id, self.workload.entry));
        let args = (self.workload.make_args)(n);
        let start = Instant::now();
        let v = m
            .call(f, args)
            .unwrap_or_else(|e| panic!("{} (n={n}, {setup:?}): {e}", self.workload.id));
        let elapsed = start.elapsed();
        assert!(
            (self.workload.check)(n, &v),
            "{} (n={n}, {setup:?}): wrong result {}",
            self.workload.id,
            v.to_write_string()
        );
        (elapsed, m.stats)
    }
}

/// Runs a diverging corpus program under monitoring, returning the time
/// and machine steps until the size-change error fires.
///
/// # Panics
///
/// Panics if the program is *not* caught (that would falsify §5.1.2).
pub fn time_to_detection(
    program: &sct_corpus::CorpusProgram,
    strategy: TableStrategy,
) -> (Duration, u64) {
    let prog = sct_lang::compile_program(program.source).expect("diverging program compiles");
    let config = MachineConfig {
        mode: SemanticsMode::Monitored,
        order: program.order.handle(),
        ..MachineConfig::monitored(strategy)
    };
    let mut m = Machine::new(&prog, config);
    let start = Instant::now();
    let r = m.run();
    let elapsed = start.elapsed();
    match r {
        Err(EvalError::Sc(_)) => (elapsed, m.stats.steps),
        other => panic!("{}: expected errorSC, got {other:?}", program.id),
    }
}

/// One measured point of the Figure-10 sweep, as serialized into
/// `BENCH_fig10.json` (see the crate docs for the schema).
#[derive(Debug, Clone)]
pub struct Fig10Entry {
    /// Workload id (`"sum"`, `"ack"`, `"interp-msort"`, …).
    pub workload: &'static str,
    /// Setup label (one of [`Setup::label`]).
    pub setup: &'static str,
    /// Input size.
    pub n: u64,
    /// Median wall time of the timed entry calls, in nanoseconds.
    pub median_ns: u128,
    /// `median_ns` relative to the unchecked median at the same
    /// `(workload, n)`.
    pub slowdown: f64,
}

/// Serializes the sweep into the `sct-fig10/1` JSON document. Hand-rolled
/// because the workspace builds offline (no serde); all strings involved
/// are static identifiers needing no escaping.
pub fn fig10_json(entries: &[Fig10Entry], fast: bool, scale: u64, reps: usize) -> String {
    let mut out = String::with_capacity(128 + entries.len() * 96);
    out.push_str("{\n  \"schema\": \"sct-fig10/1\",\n");
    out.push_str(&format!("  \"fast\": {fast},\n"));
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"workload\": \"{}\", \"setup\": \"{}\", \"n\": {}, \
             \"median_ns\": {}, \"slowdown\": {:.4} }}{}\n",
            e.workload,
            e.setup,
            e.n,
            e.median_ns,
            e.slowdown,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Default output path for `BENCH_fig10.json`: the repository root,
/// located relative to this crate's manifest so `cargo run` works from any
/// working directory.
pub fn fig10_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_fig10.json")
}

/// Formats a duration in the paper's milliseconds-with-log-axis spirit.
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms < 1.0 {
        format!("{:.3}ms", ms)
    } else if ms < 100.0 {
        format!("{:.2}ms", ms)
    } else {
        format!("{:.0}ms", ms)
    }
}

/// Result checker used by tests: value must be truthy.
pub fn check_truthy(v: &Value) -> bool {
    v.is_truthy()
}

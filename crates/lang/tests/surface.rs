//! Surface-language integration: desugaring + resolution round-trips
//! through the pretty-printer, and the full sugar suite compiles to
//! well-formed kernel programs.

use sct_lang::{compile_program, pretty};

/// Renders a compiled program back to kernel syntax and recompiles it —
/// the output must be a valid program with the same shape.
fn recompiles(src: &str) {
    let p1 = compile_program(src).unwrap_or_else(|e| panic!("compile {src}: {e}"));
    let rendered = pretty::program_to_datums(&p1)
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n");
    let p2 = compile_program(&rendered)
        .unwrap_or_else(|e| panic!("recompile failed: {e}\nrendered:\n{rendered}"));
    assert_eq!(
        p1.global_names, p2.global_names,
        "globals preserved for {src}"
    );
    assert_eq!(
        p1.lambda_count, p2.lambda_count,
        "lambda count preserved for {src}"
    );
}

#[test]
fn kernel_roundtrip_battery() {
    for src in [
        "(define (f x) (+ x 1)) (f 2)",
        "(define (ack m n) (cond [(= 0 m) (+ 1 n)] [(= 0 n) (ack (- m 1) 1)] [else (ack (- m 1) (ack m (- n 1)))])) (ack 2 3)",
        "(let loop ([i 10] [acc 0]) (if (zero? i) acc (loop (- i 1) (+ acc i))))",
        "(define (f . args) (length args)) (f 1 2 3)",
        "(lambda (a b . rest) (cons a rest))",
        "(define x 1) (set! x 2) x",
        "(letrec ([e? (lambda (n) (if (zero? n) #t (o? (- n 1))))] [o? (lambda (n) (if (zero? n) #f (e? (- n 1))))]) (e? 8))",
        "(begin 1 2 (begin 3 4))",
        "'(quoted (structure . here))",
        "(terminating/c (lambda (x) x))",
        "(case 2 [(1) 'one] [(2) 'two] [else 'many])",
        "(when #t 'yes)",
        "(unless #f 'yes)",
        "`(a ,(+ 1 2) ,@(list 3 4))",
    ] {
        recompiles(src);
    }
}

#[test]
fn sugar_expands_to_monitorable_kernel() {
    // Named let becomes a letrec-bound lambda: exactly one extra lambda.
    let p = compile_program("(let loop ([i 3]) (if (zero? i) 0 (loop (- i 1))))").unwrap();
    assert_eq!(p.lambda_count, 1);

    // cond with many clauses nests ifs, no lambdas.
    let p = compile_program("(cond [1 'a] [2 'b] [3 'c] [else 'd])").unwrap();
    assert_eq!(p.lambda_count, 0);

    // and/or expand without creating closures either.
    let p = compile_program("(or (and 1 2) (and 3 4) 5)").unwrap();
    assert_eq!(p.lambda_count, 0);
}

#[test]
fn comments_and_blocks_everywhere() {
    let src = "
; line comment
(define (f x) #| block |# x)
#;(this whole form is ignored (even (nested)))
(f 42)";
    let p = compile_program(src).unwrap();
    assert_eq!(p.top_level.len(), 2);
}

#[test]
fn error_cases_are_reported_not_panicked() {
    for bad in [
        "(",                     // parse error
        "(lambda)",              // malformed lambda
        "(define)",              // malformed define
        "(let ([x]) x)",         // malformed binding
        "(unbound-name 1)",      // unbound
        "(set! 5 1)",            // bad set! target
        "(cond [else 1] [2 3])", // else not last
        "(lambda (a a) a)",      // duplicate params
        "(quote)",               // malformed quote
        "(a . b)",               // dotted expression
    ] {
        assert!(
            compile_program(bad).is_err(),
            "{bad} should fail to compile"
        );
    }
}

#[test]
fn deeply_nested_sugar() {
    // A tower of sugar: named let inside cond inside quasiquote unquote
    // inside let* — must compile and preserve binding structure.
    let src = "
(define (go n)
  (let* ([base (cond [(even? n) 'even] [else 'odd])]
         [l (let collect ([i n] [acc '()])
              (if (zero? i) acc (collect (- i 1) (cons i acc))))])
    `(tag ,base ,@l)))
(go 4)";
    let p = compile_program(src).unwrap();
    assert_eq!(p.global_names, vec!["go"]);
    recompiles(src);
}

//! The λSCT language front end: surface syntax → lexically-resolved core AST.
//!
//! The paper's examples and evaluation corpus are written in a Scheme subset
//! (Figure 3's grammar plus the usual sugar: `define`, `cond`, `let`,
//! quasiquotation, …). This crate compiles that surface syntax, read as
//! S-expressions by `sct-sexpr`, down to a small kernel:
//!
//! 1. [`desugar`] expands derived forms (`cond`, `case`, `and`, `or`,
//!    `let*`, named `let`, `when`, `unless`, quasiquote, internal defines)
//!    into the kernel forms `lambda`, `if`, `begin`, `set!`, `quote`,
//!    `let`, `letrec`, `terminating/c` and application.
//! 2. [`resolve`] turns kernel syntax into the [`ast::Expr`] core AST with
//!    lexical addressing (frame depth × slot), a global table for top-level
//!    `define`s, direct references into the [`prims::Prim`] table, and the
//!    per-lambda free-variable lists the monitor needs to fingerprint
//!    closures (§5: "we hash the closure").
//!
//! # Examples
//!
//! ```
//! use sct_lang::compile_program;
//!
//! let prog = compile_program(
//!     "(define (ack m n)
//!        (cond [(= 0 m) (+ 1 n)]
//!              [(= 0 n) (ack (- m 1) 1)]
//!              [else (ack (- m 1) (ack m (- n 1)))]))
//!      (ack 2 3)",
//! ).expect("compiles");
//! assert_eq!(prog.global_names, vec!["ack".to_string()]);
//! assert_eq!(prog.top_level.len(), 2);
//! ```

pub mod ast;
pub mod desugar;
pub mod pretty;
pub mod prims;
pub mod resolve;

use std::fmt;

pub use ast::{Expr, GlobalIndex, LambdaDef, LambdaId, Program, VarRef};
pub use prims::Prim;

/// An error from any stage of the front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Lowercase description of the problem.
    pub message: String,
}

impl LangError {
    pub(crate) fn new(message: impl Into<String>) -> LangError {
        LangError {
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LangError {}

impl From<sct_sexpr::ParseError> for LangError {
    fn from(e: sct_sexpr::ParseError) -> Self {
        LangError {
            message: e.to_string(),
        }
    }
}

/// Compiles a whole program (a sequence of top-level forms).
///
/// # Errors
///
/// Returns [`LangError`] on parse errors, malformed special forms, unbound
/// variables, or duplicate parameter names.
pub fn compile_program(source: &str) -> Result<Program, LangError> {
    let data = sct_sexpr::parse_all(source)?;
    let expanded = desugar::desugar_top_level(&data)?;
    resolve::resolve_program(&expanded)
}

//! Lexical resolution: kernel syntax → core AST.
//!
//! Performs scope analysis (locals become frame/slot addresses, top-level
//! names become global indices, unshadowed primitive names become direct
//! [`Prim`] references), rejects unbound variables and duplicate parameters,
//! and computes each lambda's free-variable list for closure fingerprinting.

use crate::ast::{Expr, GlobalIndex, LambdaDef, Program, TopForm, VarRef};
use crate::desugar::TERM_C_HEAD;
use crate::prims::Prim;
use crate::LangError;
use sct_sexpr::Datum;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Resolves a desugared top-level program.
///
/// # Errors
///
/// Returns [`LangError`] on unbound variables, malformed kernel forms,
/// duplicate parameters, or `set!` of a primitive.
pub fn resolve_program(forms: &[Datum]) -> Result<Program, LangError> {
    let mut resolver = Resolver::new();
    // First pass: collect all global names so mutual recursion resolves.
    for form in forms {
        if let Some([_, Datum::Sym(name), _]) = form.as_list().filter(|_| form.head_is("define")) {
            resolver.intern_global(name);
        }
    }
    let mut top_level = Vec::new();
    for form in forms {
        match form.as_list() {
            Some([_, Datum::Sym(name), init]) if form.head_is("define") => {
                let index = resolver.intern_global(name);
                let expr = resolver.expr(init, Some(name))?;
                top_level.push(TopForm::Define { index, expr });
            }
            _ => {
                let expr = resolver.expr(form, None)?;
                top_level.push(TopForm::Expr(expr));
            }
        }
    }
    Ok(Program {
        global_names: resolver.globals,
        top_level,
        lambda_count: resolver.lambda_counter,
    })
}

struct Resolver {
    globals: Vec<String>,
    /// Innermost scope last; each scope is a frame's slot names.
    scopes: Vec<Vec<String>>,
    lambda_counter: u32,
}

fn err(msg: impl Into<String>) -> LangError {
    LangError::new(msg)
}

impl Resolver {
    fn new() -> Resolver {
        Resolver {
            globals: Vec::new(),
            scopes: Vec::new(),
            lambda_counter: 0,
        }
    }

    fn intern_global(&mut self, name: &str) -> GlobalIndex {
        match self.globals.iter().position(|g| g == name) {
            Some(i) => i as GlobalIndex,
            None => {
                self.globals.push(name.to_string());
                (self.globals.len() - 1) as GlobalIndex
            }
        }
    }

    fn lookup_local(&self, name: &str) -> Option<VarRef> {
        for (depth, frame) in self.scopes.iter().rev().enumerate() {
            if let Some(slot) = frame.iter().position(|n| n == name) {
                return Some(VarRef {
                    depth: depth as u16,
                    slot: slot as u16,
                });
            }
        }
        None
    }

    fn variable(&mut self, name: &str) -> Result<Expr, LangError> {
        if let Some(v) = self.lookup_local(name) {
            return Ok(Expr::Var(v));
        }
        if let Some(i) = self.globals.iter().position(|g| g == name) {
            return Ok(Expr::Global(i as GlobalIndex));
        }
        if let Some(p) = Prim::from_name(name) {
            return Ok(Expr::PrimRef(p));
        }
        Err(err(format!("unbound variable {name}")))
    }

    fn expr(&mut self, d: &Datum, name_hint: Option<&str>) -> Result<Expr, LangError> {
        match d {
            Datum::Int(_) | Datum::BigInt(_) | Datum::Bool(_) | Datum::Char(_) | Datum::Str(_) => {
                Ok(Expr::Quote(Rc::new(d.clone())))
            }
            Datum::Sym(name) => self.variable(name),
            Datum::Improper(..) => Err(err(format!("illegal dotted expression {d}"))),
            Datum::List(items) => self.list_form(items, d, name_hint),
        }
    }

    fn list_form(
        &mut self,
        items: &[Datum],
        whole: &Datum,
        name_hint: Option<&str>,
    ) -> Result<Expr, LangError> {
        if items.is_empty() {
            return Err(err("empty application ()"));
        }
        // A special-form head only applies when the name is not shadowed.
        if let Some(head) = items[0].as_sym() {
            let shadowed =
                self.lookup_local(head).is_some() || self.globals.iter().any(|g| g == head);
            if !shadowed {
                match head {
                    "quote" => {
                        let [_, datum] = items else {
                            return Err(err(format!("malformed quote: {whole}")));
                        };
                        return Ok(Expr::Quote(Rc::new(datum.clone())));
                    }
                    "lambda" => {
                        let [_, params, body] = items else {
                            return Err(err(format!("malformed kernel lambda: {whole}")));
                        };
                        return self.lambda(params, body, name_hint);
                    }
                    "if" => {
                        let [_, c, t, e] = items else {
                            return Err(err(format!("malformed kernel if: {whole}")));
                        };
                        return Ok(Expr::If {
                            cond: Rc::new(self.expr(c, None)?),
                            then_branch: Rc::new(self.expr(t, None)?),
                            else_branch: Rc::new(self.expr(e, None)?),
                        });
                    }
                    "begin" => {
                        let body: Vec<Expr> = items[1..]
                            .iter()
                            .map(|e| self.expr(e, None))
                            .collect::<Result<_, _>>()?;
                        if body.is_empty() {
                            return Err(err("empty begin"));
                        }
                        return Ok(Expr::Seq(Rc::from(body)));
                    }
                    "set!" => {
                        let [_, Datum::Sym(name), value] = items else {
                            return Err(err(format!("malformed set!: {whole}")));
                        };
                        let value = Rc::new(self.expr(value, None)?);
                        if let Some(var) = self.lookup_local(name) {
                            return Ok(Expr::SetLocal { var, value });
                        }
                        if let Some(i) = self.globals.iter().position(|g| g == name) {
                            return Ok(Expr::SetGlobal {
                                index: i as GlobalIndex,
                                value,
                            });
                        }
                        if Prim::from_name(name).is_some() {
                            return Err(err(format!("cannot set! primitive {name}")));
                        }
                        return Err(err(format!("set! of unbound variable {name}")));
                    }
                    "let" => {
                        let [_, Datum::List(bindings), body] = items else {
                            return Err(err(format!("malformed kernel let: {whole}")));
                        };
                        return self.let_form(bindings, body, false);
                    }
                    "letrec" => {
                        let [_, Datum::List(bindings), body] = items else {
                            return Err(err(format!("malformed kernel letrec: {whole}")));
                        };
                        return self.let_form(bindings, body, true);
                    }
                    h if h == TERM_C_HEAD => {
                        let [_, Datum::Str(label), body] = items else {
                            return Err(err(format!("malformed terminating/c: {whole}")));
                        };
                        return Ok(Expr::TermC {
                            body: Rc::new(self.expr(body, name_hint)?),
                            label: Rc::from(label.as_str()),
                        });
                    }
                    _ => {}
                }
            }
        }
        // Application.
        let func = Rc::new(self.expr(&items[0], None)?);
        let args: Vec<Expr> = items[1..]
            .iter()
            .map(|e| self.expr(e, None))
            .collect::<Result<_, _>>()?;
        Ok(Expr::App {
            func,
            args: Rc::from(args),
        })
    }

    fn let_form(
        &mut self,
        bindings: &[Datum],
        body: &Datum,
        recursive: bool,
    ) -> Result<Expr, LangError> {
        let mut names = Vec::with_capacity(bindings.len());
        let mut init_data = Vec::with_capacity(bindings.len());
        for b in bindings {
            let Some([Datum::Sym(name), init]) = b.as_list() else {
                return Err(err(format!("malformed binding {b}")));
            };
            if names.contains(name) {
                return Err(err(format!("duplicate binding {name}")));
            }
            names.push(name.clone());
            init_data.push((name.clone(), init.clone()));
        }
        if recursive {
            self.scopes.push(names);
            let inits: Vec<Expr> = init_data
                .iter()
                .map(|(n, e)| self.expr(e, Some(n)))
                .collect::<Result<_, _>>()?;
            let body = self.expr(body, None)?;
            self.scopes.pop();
            Ok(Expr::LetRec {
                inits: Rc::from(inits),
                body: Rc::new(body),
            })
        } else {
            let inits: Vec<Expr> = init_data
                .iter()
                .map(|(n, e)| self.expr(e, Some(n)))
                .collect::<Result<_, _>>()?;
            self.scopes.push(names);
            let body = self.expr(body, None)?;
            self.scopes.pop();
            Ok(Expr::Let {
                inits: Rc::from(inits),
                body: Rc::new(body),
            })
        }
    }

    fn lambda(
        &mut self,
        params: &Datum,
        body: &Datum,
        name_hint: Option<&str>,
    ) -> Result<Expr, LangError> {
        let (names, variadic) = parse_params(params)?;
        let required = names.len() - usize::from(variadic);
        self.scopes.push(names);
        let body = self.expr(body, None)?;
        self.scopes.pop();

        let mut free = BTreeSet::new();
        collect_free(&body, 1, &mut free);

        let id = self.lambda_counter;
        self.lambda_counter += 1;
        Ok(Expr::Lambda(Rc::new(LambdaDef {
            id,
            name: name_hint.map(|s| s.to_string()),
            params: required as u16,
            variadic,
            body,
            free: free.into_iter().collect(),
        })))
    }
}

/// Parses a lambda parameter spec: `(a b)`, `(a b . rest)`, or `args`.
/// Returns slot names (rest last) and whether the lambda is variadic.
fn parse_params(params: &Datum) -> Result<(Vec<String>, bool), LangError> {
    let mut names: Vec<String> = Vec::new();
    let push = |d: &Datum, names: &mut Vec<String>| -> Result<(), LangError> {
        let Datum::Sym(s) = d else {
            return Err(err(format!("parameter is not a symbol: {d}")));
        };
        if names.contains(s) {
            return Err(err(format!("duplicate parameter {s}")));
        }
        names.push(s.clone());
        Ok(())
    };
    match params {
        Datum::Sym(_) => {
            push(params, &mut names)?;
            Ok((names, true))
        }
        Datum::List(items) => {
            for p in items {
                push(p, &mut names)?;
            }
            Ok((names, false))
        }
        Datum::Improper(items, tail) => {
            for p in items {
                push(p, &mut names)?;
            }
            push(tail, &mut names)?;
            Ok((names, true))
        }
        _ => Err(err(format!("malformed parameter list: {params}"))),
    }
}

/// Collects variable references escaping a lambda.
///
/// `boundary` counts the frames introduced between the lambda's defining
/// environment and the current expression (the lambda's own parameter frame
/// counts as 1 at body start). A reference at `depth ≥ boundary` escapes,
/// and `depth - boundary` addresses it from the defining environment.
fn collect_free(expr: &Expr, boundary: u16, out: &mut BTreeSet<VarRef>) {
    match expr {
        Expr::Var(v) => {
            if v.depth >= boundary {
                out.insert(VarRef {
                    depth: v.depth - boundary,
                    slot: v.slot,
                });
            }
        }
        Expr::SetLocal { var, value } => {
            if var.depth >= boundary {
                out.insert(VarRef {
                    depth: var.depth - boundary,
                    slot: var.slot,
                });
            }
            collect_free(value, boundary, out);
        }
        Expr::Lambda(def) => {
            // The nested lambda's free refs are relative to *this* point.
            for fv in &def.free {
                if fv.depth >= boundary {
                    out.insert(VarRef {
                        depth: fv.depth - boundary,
                        slot: fv.slot,
                    });
                }
            }
        }
        Expr::Quote(_) | Expr::Global(_) | Expr::PrimRef(_) => {}
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_free(cond, boundary, out);
            collect_free(then_branch, boundary, out);
            collect_free(else_branch, boundary, out);
        }
        Expr::App { func, args } => {
            collect_free(func, boundary, out);
            for a in args.iter() {
                collect_free(a, boundary, out);
            }
        }
        Expr::Seq(exprs) => {
            for e in exprs.iter() {
                collect_free(e, boundary, out);
            }
        }
        Expr::SetGlobal { value, .. } => collect_free(value, boundary, out),
        Expr::Let { inits, body } => {
            for i in inits.iter() {
                collect_free(i, boundary, out);
            }
            collect_free(body, boundary + 1, out);
        }
        Expr::LetRec { inits, body } => {
            for i in inits.iter() {
                collect_free(i, boundary + 1, out);
            }
            collect_free(body, boundary + 1, out);
        }
        Expr::TermC { body, .. } => collect_free(body, boundary, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_program;

    fn compile(src: &str) -> Program {
        compile_program(src).unwrap_or_else(|e| panic!("compile failed for {src}: {e}"))
    }

    fn first_expr(p: &Program) -> &Expr {
        match &p.top_level[0] {
            TopForm::Expr(e) => e,
            TopForm::Define { expr, .. } => expr,
        }
    }

    #[test]
    fn literals_and_prims() {
        let p = compile("(+ 1 2)");
        let Expr::App { func, args } = first_expr(&p) else {
            panic!()
        };
        assert!(matches!(**func, Expr::PrimRef(Prim::Add)));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn lexical_addressing() {
        let p = compile("(lambda (x) (lambda (y) (x y)))");
        let Expr::Lambda(outer) = first_expr(&p) else {
            panic!()
        };
        let Expr::Lambda(inner) = &outer.body else {
            panic!()
        };
        let Expr::App { func, args } = &inner.body else {
            panic!()
        };
        // x is one frame up, y is local.
        assert!(matches!(**func, Expr::Var(VarRef { depth: 1, slot: 0 })));
        assert!(matches!(args[0], Expr::Var(VarRef { depth: 0, slot: 0 })));
        // Inner lambda's free list: x at depth 0 of its defining env.
        assert_eq!(inner.free, vec![VarRef { depth: 0, slot: 0 }]);
        // Outer lambda captures nothing.
        assert!(outer.free.is_empty());
    }

    #[test]
    fn free_vars_through_let() {
        let p = compile("(lambda (x) (let ((a 1)) (lambda (y) (+ a x))))");
        let Expr::Lambda(outer) = first_expr(&p) else {
            panic!()
        };
        let Expr::Let { body, .. } = &outer.body else {
            panic!()
        };
        let Expr::Lambda(inner) = &**body else {
            panic!()
        };
        // Inner sees a at depth 1 (let frame) → free depth 0; x at depth 2 → free depth 1.
        assert_eq!(
            inner.free,
            vec![VarRef { depth: 0, slot: 0 }, VarRef { depth: 1, slot: 0 }]
        );
        assert!(outer.free.is_empty(), "x is outer's own parameter");
    }

    #[test]
    fn nested_lambda_free_propagates() {
        // z is free in the innermost lambda and must surface in the middle
        // lambda's free list too.
        let p = compile("(lambda (z) (lambda (a) (lambda (b) z)))");
        let Expr::Lambda(outer) = first_expr(&p) else {
            panic!()
        };
        let Expr::Lambda(middle) = &outer.body else {
            panic!()
        };
        assert_eq!(middle.free, vec![VarRef { depth: 0, slot: 0 }]);
        assert!(outer.free.is_empty());
    }

    #[test]
    fn globals_and_mutual_recursion() {
        let p = compile(
            "(define (even? n) (if (zero? n) #t (odd? (- n 1))))
             (define (odd? n) (if (zero? n) #f (even? (- n 1))))
             (even? 10)",
        );
        assert_eq!(p.global_names, vec!["even?", "odd?"]);
        // The reference to odd? inside even? is Global(1) even though odd?
        // is defined later.
        let TopForm::Define {
            expr: Expr::Lambda(def),
            ..
        } = &p.top_level[0]
        else {
            panic!()
        };
        assert_eq!(def.name.as_deref(), Some("even?"));
        assert!(def.free.is_empty(), "globals are not captured");
    }

    #[test]
    fn user_definitions_shadow_prims() {
        let p = compile("(define (car x) x) (car 5)");
        let TopForm::Expr(Expr::App { func, .. }) = &p.top_level[1] else {
            panic!()
        };
        assert!(
            matches!(**func, Expr::Global(0)),
            "user car shadows the primitive"
        );
    }

    #[test]
    fn locals_shadow_globals_and_prims() {
        let p = compile("(define x 1) (lambda (x) x)");
        let TopForm::Expr(Expr::Lambda(def)) = &p.top_level[1] else {
            panic!()
        };
        assert!(matches!(def.body, Expr::Var(VarRef { depth: 0, slot: 0 })));
    }

    #[test]
    fn variadic_params() {
        let p = compile("(lambda args args)");
        let Expr::Lambda(def) = first_expr(&p) else {
            panic!()
        };
        assert_eq!(def.params, 0);
        assert!(def.variadic);
        assert_eq!(def.frame_size(), 1);

        let p = compile("(lambda (a b . r) r)");
        let Expr::Lambda(def) = first_expr(&p) else {
            panic!()
        };
        assert_eq!(def.params, 2);
        assert!(def.variadic);
        assert_eq!(def.frame_size(), 3);
    }

    #[test]
    fn letrec_scoping() {
        let p = compile("(letrec ((f (lambda (n) (f n)))) f)");
        let Expr::LetRec { inits, body } = first_expr(&p) else {
            panic!()
        };
        let Expr::Lambda(def) = &inits[0] else {
            panic!()
        };
        assert_eq!(def.name.as_deref(), Some("f"));
        // f refers to itself through the letrec frame: free at depth 0.
        assert_eq!(def.free, vec![VarRef { depth: 0, slot: 0 }]);
        assert!(matches!(**body, Expr::Var(VarRef { depth: 0, slot: 0 })));
    }

    #[test]
    fn term_c_resolves() {
        let p = compile("(terminating/c (lambda (x) x))");
        let Expr::TermC { label, body } = first_expr(&p) else {
            panic!()
        };
        assert!(label.contains("terminating/c#0"), "got {label}");
        assert!(matches!(**body, Expr::Lambda(_)));
    }

    #[test]
    fn resolution_errors() {
        assert!(compile_program("nope").is_err());
        assert!(compile_program("(set! nope 1)").is_err());
        assert!(compile_program("(set! car 1)").is_err());
        assert!(compile_program("(lambda (x x) x)").is_err());
        assert!(compile_program("(let ((x 1) (x 2)) x)").is_err());
    }

    #[test]
    fn set_local_and_global() {
        let p = compile("(define g 0) (lambda (x) (set! x 1)) (set! g 2)");
        let TopForm::Expr(Expr::Lambda(def)) = &p.top_level[1] else {
            panic!()
        };
        assert!(matches!(def.body, Expr::SetLocal { .. }));
        let TopForm::Expr(Expr::SetGlobal { index: 0, .. }) = &p.top_level[2] else {
            panic!()
        };
    }

    #[test]
    fn quoted_data_preserved() {
        let p = compile("'(1 2 (3 . 4))");
        let Expr::Quote(d) = first_expr(&p) else {
            panic!()
        };
        assert_eq!(d.to_string(), "(1 2 (3 . 4))");
    }

    #[test]
    fn ack_compiles_end_to_end() {
        let p = compile(
            "(define (ack m n)
               (cond [(= 0 m) (+ 1 n)]
                     [(= 0 n) (ack (- m 1) 1)]
                     [else (ack (- m 1) (ack m (- n 1)))]))
             (ack 2 0)",
        );
        assert_eq!(p.lambda_count, 1);
        assert_eq!(p.global_names, vec!["ack"]);
    }
}

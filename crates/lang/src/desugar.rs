//! Expansion of derived surface forms into kernel forms.
//!
//! The kernel the resolver understands is: `quote`, `lambda`, `if`,
//! `begin`, `set!`, `let`, `letrec`, the internal `(" term/c" label e)`
//! contract form, top-level `define`, and application. Everything else the
//! corpus uses — `cond` (with `=>`), `case`, `and`, `or`, `when`,
//! `unless`, `let*`, named `let`, internal defines, quasiquotation —
//! expands here, Datum to Datum, so expansions stay printable and testable.
//!
//! The special-form names are reserved words: the corpus subset does not
//! permit shadowing them with local bindings (as in the paper's Racket
//! programs, where they are module-level bindings).

use crate::LangError;
use sct_sexpr::Datum;

/// Internal head symbol for the desugared `terminating/c` form. The leading
/// space makes it unwritable in source text.
pub const TERM_C_HEAD: &str = " term/c";

/// Desugars a whole top-level program.
///
/// # Errors
///
/// Returns [`LangError`] on malformed special forms.
pub fn desugar_top_level(forms: &[Datum]) -> Result<Vec<Datum>, LangError> {
    let mut d = Desugarer::new();
    forms.iter().map(|f| d.top_form(f)).collect()
}

/// Desugars a single expression (used by tests and the REPL-style API).
///
/// # Errors
///
/// Returns [`LangError`] on malformed special forms.
pub fn desugar_expr(form: &Datum) -> Result<Datum, LangError> {
    Desugarer::new().expr(form)
}

struct Desugarer {
    gensym_counter: u32,
    term_c_counter: u32,
}

fn sym(s: &str) -> Datum {
    Datum::Sym(s.to_string())
}

fn list(items: Vec<Datum>) -> Datum {
    Datum::List(items)
}

fn err(msg: impl Into<String>) -> LangError {
    LangError::new(msg)
}

impl Desugarer {
    fn new() -> Desugarer {
        Desugarer {
            gensym_counter: 0,
            term_c_counter: 0,
        }
    }

    fn gensym(&mut self, hint: &str) -> Datum {
        let n = self.gensym_counter;
        self.gensym_counter += 1;
        // The leading space cannot appear in a parsed symbol, so generated
        // temporaries can never capture user variables.
        Datum::Sym(format!(" {hint}{n}"))
    }

    fn top_form(&mut self, form: &Datum) -> Result<Datum, LangError> {
        if form.head_is("define") {
            let items = form.as_list().unwrap();
            match items {
                [_, Datum::Sym(name), init] => {
                    Ok(list(vec![sym("define"), sym(name), self.expr(init)?]))
                }
                [_, header @ (Datum::List(_) | Datum::Improper(..)), body @ ..]
                    if !body.is_empty() =>
                {
                    let (name, lambda) = self.define_function(header, body)?;
                    Ok(list(vec![sym("define"), Datum::Sym(name), lambda]))
                }
                _ => Err(err(format!("malformed define: {form}"))),
            }
        } else {
            self.expr(form)
        }
    }

    /// Expands `(define (f a b . r) body...)` headers, including curried
    /// headers `(define ((f a) b) ...)` which Racket allows (unused by the
    /// corpus but cheap to support by recursion).
    fn define_function(
        &mut self,
        header: &Datum,
        body: &[Datum],
    ) -> Result<(String, Datum), LangError> {
        let (head, params): (&Datum, Vec<Datum>) = match header {
            Datum::List(items) if !items.is_empty() => (&items[0], items[1..].to_vec()),
            Datum::Improper(items, tail) if !items.is_empty() => {
                let mut ps = items[1..].to_vec();
                ps.push(Datum::Improper(vec![], tail.clone()));
                (&items[0], ps)
            }
            _ => return Err(err(format!("malformed define header: {header}"))),
        };
        // Rebuild the parameter datum for the lambda.
        let param_datum = rebuild_params(&params);
        match head {
            Datum::Sym(name) => {
                let lambda = self.lambda_from(param_datum, body)?;
                Ok((name.clone(), lambda))
            }
            nested @ (Datum::List(_) | Datum::Improper(..)) => {
                let inner = self.lambda_from(param_datum, body)?;
                self.define_function(nested, std::slice::from_ref(&inner))
            }
            _ => Err(err(format!("malformed define header: {header}"))),
        }
    }

    fn lambda_from(&mut self, params: Datum, body: &[Datum]) -> Result<Datum, LangError> {
        let body_expr = self.body(body)?;
        Ok(list(vec![sym("lambda"), params, body_expr]))
    }

    /// A body is zero or more internal defines followed by expressions;
    /// defines become a `letrec` (letrec* order).
    fn body(&mut self, forms: &[Datum]) -> Result<Datum, LangError> {
        let mut defines: Vec<(Datum, Datum)> = Vec::new();
        let mut rest = forms;
        while let Some(first) = rest.first() {
            if first.head_is("define") {
                let d = self.top_form(first)?;
                let items = d.as_list().unwrap();
                defines.push((items[1].clone(), items[2].clone()));
                rest = &rest[1..];
            } else {
                break;
            }
        }
        if rest.is_empty() {
            return Err(err("body has no expressions"));
        }
        let exprs: Vec<Datum> = rest
            .iter()
            .map(|f| self.expr(f))
            .collect::<Result<_, _>>()?;
        let body = if exprs.len() == 1 {
            exprs.into_iter().next().unwrap()
        } else {
            let mut b = vec![sym("begin")];
            b.extend(exprs);
            list(b)
        };
        if defines.is_empty() {
            Ok(body)
        } else {
            let bindings: Vec<Datum> = defines.into_iter().map(|(n, e)| list(vec![n, e])).collect();
            Ok(list(vec![sym("letrec"), list(bindings), body]))
        }
    }

    fn expr(&mut self, form: &Datum) -> Result<Datum, LangError> {
        let Some(items) = form.as_list() else {
            // Atoms: self-evaluating literals and variables pass through.
            return Ok(form.clone());
        };
        if items.is_empty() {
            return Err(err("empty application ()"));
        }
        let head = items[0].as_sym();
        match head {
            Some("quote") => Ok(form.clone()),
            Some("quasiquote") => {
                let [_, inner] = items else {
                    return Err(err(format!("malformed quasiquote: {form}")));
                };
                self.quasi(inner, 1)
            }
            Some("unquote") | Some("unquote-splicing") => {
                Err(err(format!("{} outside quasiquote", head.unwrap())))
            }
            Some("lambda") | Some("λ") => {
                let [_, params, body @ ..] = items else {
                    return Err(err(format!("malformed lambda: {form}")));
                };
                if body.is_empty() {
                    return Err(err(format!("lambda has no body: {form}")));
                }
                self.lambda_from(params.clone(), body)
            }
            Some("if") => match items {
                [_, c, t] => Ok(list(vec![
                    sym("if"),
                    self.expr(c)?,
                    self.expr(t)?,
                    list(vec![sym("void")]),
                ])),
                [_, c, t, e] => Ok(list(vec![
                    sym("if"),
                    self.expr(c)?,
                    self.expr(t)?,
                    self.expr(e)?,
                ])),
                _ => Err(err(format!("malformed if: {form}"))),
            },
            Some("begin") => {
                let [_, body @ ..] = items else {
                    unreachable!()
                };
                if body.is_empty() {
                    return Ok(list(vec![sym("void")]));
                }
                self.body(body)
            }
            Some("set!") => match items {
                [_, v @ Datum::Sym(_), e] => Ok(list(vec![sym("set!"), v.clone(), self.expr(e)?])),
                _ => Err(err(format!("malformed set!: {form}"))),
            },
            Some("let") => self.let_form(items, form),
            Some("let*") => {
                let [_, Datum::List(bindings), body @ ..] = items else {
                    return Err(err(format!("malformed let*: {form}")));
                };
                if body.is_empty() {
                    return Err(err(format!("let* has no body: {form}")));
                }
                match bindings.split_first() {
                    None => self.body(body),
                    Some((first, rest)) => {
                        let mut inner = vec![sym("let*"), list(rest.to_vec())];
                        inner.extend(body.iter().cloned());
                        let inner = list(inner);
                        self.expr(&list(vec![sym("let"), list(vec![first.clone()]), inner]))
                    }
                }
            }
            Some("letrec") | Some("letrec*") => {
                let [_, Datum::List(bindings), body @ ..] = items else {
                    return Err(err(format!("malformed letrec: {form}")));
                };
                if body.is_empty() {
                    return Err(err(format!("letrec has no body: {form}")));
                }
                let bound: Vec<Datum> = bindings
                    .iter()
                    .map(|b| self.binding(b))
                    .collect::<Result<_, _>>()?;
                let body = self.body(body)?;
                Ok(list(vec![sym("letrec"), list(bound), body]))
            }
            Some("cond") => self.cond(&items[1..], form),
            Some("case") => self.case(&items[1..], form),
            Some("and") => self.and(&items[1..]),
            Some("or") => self.or(&items[1..]),
            Some("when") => {
                let [_, test, body @ ..] = items else {
                    return Err(err(format!("malformed when: {form}")));
                };
                if body.is_empty() {
                    return Err(err(format!("when has no body: {form}")));
                }
                let body = self.body(body)?;
                Ok(list(vec![
                    sym("if"),
                    self.expr(test)?,
                    body,
                    list(vec![sym("void")]),
                ]))
            }
            Some("unless") => {
                let [_, test, body @ ..] = items else {
                    return Err(err(format!("malformed unless: {form}")));
                };
                if body.is_empty() {
                    return Err(err(format!("unless has no body: {form}")));
                }
                let body = self.body(body)?;
                Ok(list(vec![
                    sym("if"),
                    self.expr(test)?,
                    list(vec![sym("void")]),
                    body,
                ]))
            }
            Some("terminating/c") | Some("term/c") if items.len() >= 2 => {
                let (expr, label) = match items {
                    [_, e] => {
                        let shown = e.to_string();
                        let truncated: String = shown.chars().take(40).collect();
                        let n = self.term_c_counter;
                        self.term_c_counter += 1;
                        (e, format!("terminating/c#{n} on {truncated}"))
                    }
                    [_, e, Datum::Str(label)] => (e, label.clone()),
                    _ => return Err(err(format!("malformed terminating/c: {form}"))),
                };
                Ok(list(vec![
                    sym(TERM_C_HEAD),
                    Datum::Str(label),
                    self.expr(expr)?,
                ]))
            }
            _ => {
                // Application.
                let parts: Vec<Datum> = items
                    .iter()
                    .map(|i| self.expr(i))
                    .collect::<Result<_, _>>()?;
                Ok(list(parts))
            }
        }
    }

    fn binding(&mut self, b: &Datum) -> Result<Datum, LangError> {
        match b.as_list() {
            Some([name @ Datum::Sym(_), init]) => Ok(list(vec![name.clone(), self.expr(init)?])),
            _ => Err(err(format!("malformed binding: {b}"))),
        }
    }

    fn let_form(&mut self, items: &[Datum], form: &Datum) -> Result<Datum, LangError> {
        match items {
            // Named let: (let loop ([x e] ...) body...)
            [_, Datum::Sym(name), Datum::List(bindings), body @ ..] if !body.is_empty() => {
                let mut params = Vec::new();
                let mut inits = Vec::new();
                for b in bindings {
                    let Some([Datum::Sym(p), init]) = b.as_list() else {
                        return Err(err(format!("malformed named-let binding in {form}")));
                    };
                    params.push(sym(p));
                    inits.push(init.clone());
                }
                // (letrec ([name (lambda (params) body)]) (name inits...))
                let lambda = {
                    let mut l = vec![sym("lambda"), list(params)];
                    l.extend(body.iter().cloned());
                    list(l)
                };
                let mut call = vec![sym(name)];
                call.extend(inits);
                let expanded = list(vec![
                    sym("letrec"),
                    list(vec![list(vec![sym(name), lambda])]),
                    list(call),
                ]);
                self.expr(&expanded)
            }
            [_, Datum::List(bindings), body @ ..] if !body.is_empty() => {
                let bound: Vec<Datum> = bindings
                    .iter()
                    .map(|b| self.binding(b))
                    .collect::<Result<_, _>>()?;
                let body = self.body(body)?;
                Ok(list(vec![sym("let"), list(bound), body]))
            }
            _ => Err(err(format!("malformed let: {form}"))),
        }
    }

    fn cond(&mut self, clauses: &[Datum], form: &Datum) -> Result<Datum, LangError> {
        let Some((clause, rest)) = clauses.split_first() else {
            return Ok(list(vec![sym("void")]));
        };
        let Some(parts) = clause.as_list() else {
            return Err(err(format!("malformed cond clause in {form}")));
        };
        match parts {
            [Datum::Sym(e), body @ ..] if e == "else" => {
                if !rest.is_empty() {
                    return Err(err(format!("cond: else clause not last in {form}")));
                }
                if body.is_empty() {
                    return Err(err(format!("cond: empty else clause in {form}")));
                }
                self.body(body)
            }
            [test] => {
                let t = self.gensym("t");
                let rest_expr = self.cond(rest, form)?;
                Ok(list(vec![
                    sym("let"),
                    list(vec![list(vec![t.clone(), self.expr(test)?])]),
                    list(vec![sym("if"), t.clone(), t, rest_expr]),
                ]))
            }
            [test, Datum::Sym(arrow), f] if arrow == "=>" => {
                let t = self.gensym("t");
                let rest_expr = self.cond(rest, form)?;
                Ok(list(vec![
                    sym("let"),
                    list(vec![list(vec![t.clone(), self.expr(test)?])]),
                    list(vec![
                        sym("if"),
                        t.clone(),
                        list(vec![self.expr(f)?, t]),
                        rest_expr,
                    ]),
                ]))
            }
            [test, body @ ..] => {
                let rest_expr = self.cond(rest, form)?;
                let body = self.body(body)?;
                Ok(list(vec![sym("if"), self.expr(test)?, body, rest_expr]))
            }
            [] => Err(err(format!("empty cond clause in {form}"))),
        }
    }

    fn case(&mut self, parts: &[Datum], form: &Datum) -> Result<Datum, LangError> {
        let Some((scrutinee, clauses)) = parts.split_first() else {
            return Err(err(format!("malformed case: {form}")));
        };
        let k = self.gensym("k");
        let mut cond_clauses: Vec<Datum> = Vec::new();
        for clause in clauses {
            let Some(items) = clause.as_list() else {
                return Err(err(format!("malformed case clause in {form}")));
            };
            match items {
                [Datum::Sym(e), body @ ..] if e == "else" && !body.is_empty() => {
                    let mut c = vec![sym("else")];
                    c.extend(body.iter().cloned());
                    cond_clauses.push(list(c));
                }
                [data @ Datum::List(_), body @ ..] if !body.is_empty() => {
                    let test = list(vec![
                        sym("memv"),
                        k.clone(),
                        list(vec![sym("quote"), data.clone()]),
                    ]);
                    let mut c = vec![test];
                    c.extend(body.iter().cloned());
                    cond_clauses.push(list(c));
                }
                _ => return Err(err(format!("malformed case clause in {form}"))),
            }
        }
        let mut cond_form = vec![sym("cond")];
        cond_form.extend(cond_clauses);
        let expanded = list(vec![
            sym("let"),
            list(vec![list(vec![k, scrutinee.clone()])]),
            list(cond_form),
        ]);
        self.expr(&expanded)
    }

    fn and(&mut self, args: &[Datum]) -> Result<Datum, LangError> {
        match args {
            [] => Ok(Datum::Bool(true)),
            [e] => self.expr(e),
            [e, rest @ ..] => {
                let rest_expr = self.and(rest)?;
                Ok(list(vec![
                    sym("if"),
                    self.expr(e)?,
                    rest_expr,
                    Datum::Bool(false),
                ]))
            }
        }
    }

    fn or(&mut self, args: &[Datum]) -> Result<Datum, LangError> {
        match args {
            [] => Ok(Datum::Bool(false)),
            [e] => self.expr(e),
            [e, rest @ ..] => {
                let t = self.gensym("t");
                let rest_expr = self.or(rest)?;
                Ok(list(vec![
                    sym("let"),
                    list(vec![list(vec![t.clone(), self.expr(e)?])]),
                    list(vec![sym("if"), t.clone(), t, rest_expr]),
                ]))
            }
        }
    }

    /// Standard quasiquote expansion with nesting depth.
    fn quasi(&mut self, d: &Datum, depth: u32) -> Result<Datum, LangError> {
        if !has_unquote(d) {
            return Ok(list(vec![sym("quote"), d.clone()]));
        }
        match d {
            Datum::List(items) => match items.as_slice() {
                [Datum::Sym(u), e] if u == "unquote" => {
                    if depth == 1 {
                        self.expr(e)
                    } else {
                        let inner = self.quasi(e, depth - 1)?;
                        Ok(list(vec![
                            sym("list"),
                            list(vec![sym("quote"), sym("unquote")]),
                            inner,
                        ]))
                    }
                }
                [Datum::Sym(u), e] if u == "quasiquote" => {
                    let inner = self.quasi(e, depth + 1)?;
                    Ok(list(vec![
                        sym("list"),
                        list(vec![sym("quote"), sym("quasiquote")]),
                        inner,
                    ]))
                }
                _ => self.quasi_seq(items, None, depth),
            },
            Datum::Improper(items, tail) => self.quasi_seq(items, Some(tail), depth),
            atom => Ok(list(vec![sym("quote"), atom.clone()])),
        }
    }

    fn quasi_seq(
        &mut self,
        items: &[Datum],
        tail: Option<&Datum>,
        depth: u32,
    ) -> Result<Datum, LangError> {
        let mut acc = match tail {
            Some(t) => self.quasi(t, depth)?,
            None => list(vec![sym("quote"), Datum::nil()]),
        };
        for item in items.iter().rev() {
            let is_splice = depth == 1
                && matches!(item.as_list(),
                    Some([Datum::Sym(u), _]) if u == "unquote-splicing");
            if is_splice {
                let e = &item.as_list().unwrap()[1];
                acc = list(vec![sym("append"), self.expr(e)?, acc]);
            } else {
                let head = self.quasi(item, depth)?;
                acc = list(vec![sym("cons"), head, acc]);
            }
        }
        Ok(acc)
    }
}

fn rebuild_params(params: &[Datum]) -> Datum {
    // `define_function` encodes a rest arg as a trailing Improper([], tail).
    if let Some(Datum::Improper(items, tail)) = params.last() {
        if items.is_empty() {
            let fixed = params[..params.len() - 1].to_vec();
            if fixed.is_empty() {
                return (**tail).clone();
            }
            return Datum::Improper(fixed, tail.clone());
        }
    }
    Datum::List(params.to_vec())
}

fn has_unquote(d: &Datum) -> bool {
    match d {
        Datum::List(items) => {
            if let [Datum::Sym(u), _] = items.as_slice() {
                if u == "unquote" || u == "unquote-splicing" {
                    return true;
                }
            }
            items.iter().any(has_unquote)
        }
        Datum::Improper(items, tail) => items.iter().any(has_unquote) || has_unquote(tail),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_sexpr::parse_one;

    fn expand(src: &str) -> String {
        desugar_expr(&parse_one(src).unwrap()).unwrap().to_string()
    }

    fn expand_top(src: &str) -> String {
        let forms = sct_sexpr::parse_all(src).unwrap();
        desugar_top_level(&forms)
            .unwrap()
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn define_function_sugar() {
        assert_eq!(
            expand_top("(define (f x y) (+ x y))"),
            "(define f (lambda (x y) (+ x y)))"
        );
        assert_eq!(
            expand_top("(define (f . args) args)"),
            "(define f (lambda args args))"
        );
        assert_eq!(
            expand_top("(define (f a . rest) rest)"),
            "(define f (lambda (a . rest) rest))"
        );
    }

    #[test]
    fn if_gets_else_arm() {
        assert_eq!(expand("(if a b)"), "(if a b (void))");
        assert_eq!(expand("(if a b c)"), "(if a b c)");
    }

    #[test]
    fn cond_expansion() {
        assert_eq!(expand("(cond [a 1] [else 2])"), "(if a 1 2)");
        assert_eq!(expand("(cond)"), "(void)");
        // Single-test clause binds a temp.
        let out = expand("(cond [a])");
        assert!(
            out.starts_with("(let (( t0 a)) (if  t0  t0 (void)))"),
            "got: {out}"
        );
        // => clause applies the receiver.
        let out = expand("(cond [a => f] [else 0])");
        assert!(out.contains("(f  t0)"), "got: {out}");
    }

    #[test]
    fn and_or_when_unless() {
        assert_eq!(expand("(and)"), "#t");
        assert_eq!(expand("(or)"), "#f");
        assert_eq!(expand("(and a b)"), "(if a b #f)");
        let or = expand("(or a b)");
        assert!(or.contains("(if  t0  t0 b)"), "got: {or}");
        assert_eq!(expand("(when a b)"), "(if a b (void))");
        assert_eq!(expand("(unless a b)"), "(if a (void) b)");
    }

    #[test]
    fn let_star_nests() {
        assert_eq!(
            expand("(let* ([a 1] [b a]) b)"),
            "(let ((a 1)) (let ((b a)) b))"
        );
        assert_eq!(expand("(let* () 5)"), "5");
    }

    #[test]
    fn named_let_becomes_letrec() {
        let out = expand("(let loop ([i 10]) (if (zero? i) 0 (loop (- i 1))))");
        assert!(out.starts_with("(letrec ((loop (lambda (i)"), "got: {out}");
        assert!(out.ends_with("(loop 10))"), "got: {out}");
    }

    #[test]
    fn internal_defines_become_letrec() {
        let out = expand("(lambda (x) (define y 1) (define (g) y) (g))");
        assert_eq!(out, "(lambda (x) (letrec ((y 1) (g (lambda () y))) (g)))");
    }

    #[test]
    fn case_expands_to_memv() {
        let out = expand("(case x [(1 2) 'a] [else 'b])");
        assert!(out.contains("(memv  k0 (quote (1 2)))"), "got: {out}");
        assert!(out.contains("(quote a)"), "got: {out}");
    }

    #[test]
    fn quasiquote_simple() {
        // No unquotes: collapses to plain quote.
        assert_eq!(expand("`(a b c)"), "(quote (a b c))");
        // Unquote splices an expression in.
        assert_eq!(expand("`(a ,x)"), "(cons (quote a) (cons x (quote ())))");
        // Splicing uses append.
        assert_eq!(
            expand("`(a ,@xs b)"),
            "(cons (quote a) (append xs (cons (quote b) (quote ()))))"
        );
    }

    #[test]
    fn quasiquote_nested_depth() {
        // Inner quasiquote increments depth; unquote at depth 2 is data.
        let out = expand("``(,x)");
        assert!(out.contains("(quote unquote)"), "got: {out}");
        // Double unquote reaches code at depth 2.
        let out = expand("`(a `(b ,(c ,x)))");
        assert!(out.contains('x'), "got: {out}");
    }

    #[test]
    fn terminating_c_gets_label() {
        let out = expand("(terminating/c f)");
        assert!(
            out.starts_with("( term/c \"terminating/c#0 on f\" f)"),
            "got: {out}"
        );
        let out2 = expand("(terminating/c f \"my-label\")");
        assert!(out2.contains("my-label"), "got: {out2}");
    }

    #[test]
    fn begin_empty_and_body_sequencing() {
        assert_eq!(expand("(begin)"), "(void)");
        assert_eq!(expand("(begin 1 2)"), "(begin 1 2)");
        assert_eq!(expand("(lambda () 1 2)"), "(lambda () (begin 1 2))");
    }

    #[test]
    fn errors() {
        assert!(desugar_expr(&parse_one("()").unwrap()).is_err());
        assert!(desugar_expr(&parse_one("(lambda (x))").unwrap()).is_err());
        assert!(desugar_expr(&parse_one("(set! 3 4)").unwrap()).is_err());
        assert!(desugar_expr(&parse_one("(unquote x)").unwrap()).is_err());
        assert!(desugar_expr(&parse_one("(cond [else 1] [a 2])").unwrap()).is_err());
        let forms = sct_sexpr::parse_all("(define)").unwrap();
        assert!(desugar_top_level(&forms).is_err());
    }

    #[test]
    fn curried_define() {
        assert_eq!(
            expand_top("(define ((adder n) m) (+ n m))"),
            "(define adder (lambda (n) (lambda (m) (+ n m))))"
        );
    }
}

//! The core AST produced by the resolver.
//!
//! Variables are lexically addressed (`depth` frames out, `slot` within the
//! frame), top-level definitions live in a global table, and every `lambda`
//! carries the list of free-variable references the interpreter uses to
//! fingerprint closures for the size-change table (§5).

use crate::prims::Prim;
use sct_sexpr::Datum;
use std::rc::Rc;

/// A lexical address: `depth` enclosing frames out, then `slot` within that
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarRef {
    /// Frames to walk outward (0 = innermost).
    pub depth: u16,
    /// Slot within the frame.
    pub slot: u16,
}

/// Index into a [`Program`]'s global table.
pub type GlobalIndex = u32;

/// Unique identifier of a `lambda` form within a program.
pub type LambdaId = u32;

/// A compiled `lambda`.
#[derive(Debug)]
pub struct LambdaDef {
    /// Unique per `lambda` occurrence in the program.
    pub id: LambdaId,
    /// Name from an enclosing `define`/`letrec` binding, for messages.
    pub name: Option<String>,
    /// Number of required parameters.
    pub params: u16,
    /// When true, extra arguments are collected into a rest list stored in
    /// slot `params`.
    pub variadic: bool,
    /// The body, resolved relative to the lambda's parameter frame.
    pub body: Expr,
    /// References to the *defining* environment that occur free in the body
    /// (directly or through nested lambdas). The interpreter hashes the
    /// values at these references to fingerprint the closure.
    pub free: Vec<VarRef>,
}

impl LambdaDef {
    /// Total slots in the parameter frame (params plus rest list).
    pub fn frame_size(&self) -> usize {
        self.params as usize + usize::from(self.variadic)
    }

    /// Human-readable name for error messages.
    pub fn describe(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => format!("lambda#{}", self.id),
        }
    }
}

/// A core expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A literal or quoted datum (all constants are represented this way).
    Quote(Rc<Datum>),
    /// Local variable reference.
    Var(VarRef),
    /// Top-level variable reference.
    Global(GlobalIndex),
    /// Direct reference to a primitive.
    PrimRef(Prim),
    /// Closure creation.
    Lambda(Rc<LambdaDef>),
    /// Two-armed conditional (desugaring supplies `(void)` else arms).
    If {
        /// Test expression.
        cond: Rc<Expr>,
        /// Evaluated when the test is not `#f`.
        then_branch: Rc<Expr>,
        /// Evaluated when the test is `#f`.
        else_branch: Rc<Expr>,
    },
    /// Application `(f e ...)`.
    App {
        /// Operator expression.
        func: Rc<Expr>,
        /// Operand expressions, left to right.
        args: Rc<[Expr]>,
    },
    /// `(begin e ...)` — evaluates all, yields the last. Non-empty.
    Seq(Rc<[Expr]>),
    /// `(set! x e)` on a local.
    SetLocal {
        /// Target variable.
        var: VarRef,
        /// New value.
        value: Rc<Expr>,
    },
    /// `(set! x e)` on a global.
    SetGlobal {
        /// Target global index.
        index: GlobalIndex,
        /// New value.
        value: Rc<Expr>,
    },
    /// `(let ([x e] ...) body)`: evaluates inits in the outer scope, then
    /// pushes one frame. Kept as a core form (rather than a lambda
    /// application) so binding a variable is not a monitored call.
    Let {
        /// Initializer expressions, evaluated left to right in the outer
        /// environment.
        inits: Rc<[Expr]>,
        /// Body, resolved with the new frame innermost.
        body: Rc<Expr>,
    },
    /// `(letrec ([x e] ...) body)`: pushes a frame of undefined slots, then
    /// evaluates inits left to right (each assigned as produced), then the
    /// body — `letrec*` semantics, as Scheme internal defines require.
    LetRec {
        /// Initializer expressions, evaluated inside the new frame.
        inits: Rc<[Expr]>,
        /// Body, in the same frame.
        body: Rc<Expr>,
    },
    /// `(terminating/c e)` — the `term/c` contract form of §3.6, tagged
    /// with a blame label derived from the source text (§2.3).
    TermC {
        /// Expression producing the value to wrap.
        body: Rc<Expr>,
        /// Blame label for violations inside the wrapped extent.
        label: Rc<str>,
    },
}

impl Expr {
    /// Convenience constructor for literals in tests.
    pub fn quoted(d: Datum) -> Expr {
        Expr::Quote(Rc::new(d))
    }
}

/// One top-level form.
#[derive(Debug)]
pub enum TopForm {
    /// `(define name e)` — evaluate `e`, store in global `index`.
    Define {
        /// Global slot to assign.
        index: GlobalIndex,
        /// Initializer.
        expr: Expr,
    },
    /// A top-level expression evaluated for value/effect.
    Expr(Expr),
}

/// A compiled program: global table plus top-level forms in order. The
/// program's value is the value of its last top-level expression.
#[derive(Debug)]
pub struct Program {
    /// Names of the globals, in index order (all `define`d names).
    pub global_names: Vec<String>,
    /// Top-level forms in source order.
    pub top_level: Vec<TopForm>,
    /// Number of `lambda` forms compiled (ids are `0..lambda_count`).
    pub lambda_count: u32,
}

/// Static binding metadata for one global, computed by
/// [`Program::global_bindings`]. A compiler may treat a global as a known
/// function exactly when it is defined once, by a `lambda`, and never
/// `set!` — then every call site's callee is the closure of `lambda`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalBinding {
    /// How many `define`s target this global (shadowing re-`define`s make
    /// the binding dynamic).
    pub define_count: u32,
    /// The λ id of the sole initializer when it is syntactically a
    /// `lambda` (`None` for non-λ initializers or multiple defines).
    pub lambda: Option<LambdaId>,
    /// Whether any `set!` in the program targets this global.
    pub mutated: bool,
}

impl GlobalBinding {
    /// The λ this global is statically bound to, when the binding is
    /// immutable and unique.
    pub fn static_lambda(&self) -> Option<LambdaId> {
        (self.define_count == 1 && !self.mutated)
            .then_some(self.lambda)
            .flatten()
    }
}

impl Program {
    /// Index of a global by name, if defined.
    pub fn global_index(&self, name: &str) -> Option<GlobalIndex> {
        self.global_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as GlobalIndex)
    }

    /// Per-global static binding metadata (define multiplicity, λ
    /// initializer, `set!` mutation) — what call-site specialization in
    /// `sct-ir` keys on.
    pub fn global_bindings(&self) -> Vec<GlobalBinding> {
        let mut out = vec![GlobalBinding::default(); self.global_names.len()];
        fn scan(e: &Expr, out: &mut [GlobalBinding]) {
            match e {
                Expr::SetGlobal { index, value } => {
                    out[*index as usize].mutated = true;
                    scan(value, out);
                }
                Expr::Quote(_) | Expr::Var(_) | Expr::Global(_) | Expr::PrimRef(_) => {}
                Expr::Lambda(def) => scan(&def.body, out),
                Expr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    scan(cond, out);
                    scan(then_branch, out);
                    scan(else_branch, out);
                }
                Expr::App { func, args } => {
                    scan(func, out);
                    args.iter().for_each(|a| scan(a, out));
                }
                Expr::Seq(exprs) => exprs.iter().for_each(|a| scan(a, out)),
                Expr::SetLocal { value, .. } => scan(value, out),
                Expr::Let { inits, body } | Expr::LetRec { inits, body } => {
                    inits.iter().for_each(|a| scan(a, out));
                    scan(body, out);
                }
                Expr::TermC { body, .. } => scan(body, out),
            }
        }
        for form in &self.top_level {
            match form {
                TopForm::Define { index, expr } => {
                    let b = &mut out[*index as usize];
                    b.define_count += 1;
                    b.lambda = match expr {
                        Expr::Lambda(def) => Some(def.id),
                        _ => None,
                    };
                    scan(expr, &mut out);
                }
                TopForm::Expr(expr) => scan(expr, &mut out),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_size_counts_rest() {
        let fixed = LambdaDef {
            id: 0,
            name: None,
            params: 2,
            variadic: false,
            body: Expr::quoted(Datum::Int(0)),
            free: vec![],
        };
        assert_eq!(fixed.frame_size(), 2);
        let var = LambdaDef {
            params: 2,
            variadic: true,
            ..fixed
        };
        assert_eq!(var.frame_size(), 3);
    }

    #[test]
    fn describe_prefers_name() {
        let mut def = LambdaDef {
            id: 3,
            name: None,
            params: 0,
            variadic: false,
            body: Expr::quoted(Datum::Int(0)),
            free: vec![],
        };
        assert_eq!(def.describe(), "lambda#3");
        def.name = Some("loop".into());
        assert_eq!(def.describe(), "loop");
    }
}

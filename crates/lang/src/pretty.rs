//! Rendering the core AST back to S-expression syntax.
//!
//! Useful for debugging compiled programs and for error messages; the
//! output is *kernel* syntax (post-desugaring), with lexical addresses
//! rendered as generated names `v<depth>_<slot>` scoped by binder.

use crate::ast::{Expr, LambdaDef, Program, TopForm, VarRef};
use sct_sexpr::Datum;

/// Names in scope, innermost frame last.
struct Scope {
    frames: Vec<Vec<String>>,
}

impl Scope {
    fn name_of(&self, v: VarRef) -> String {
        let idx = self.frames.len().checked_sub(1 + v.depth as usize);
        match idx
            .and_then(|i| self.frames.get(i))
            .and_then(|f| f.get(v.slot as usize))
        {
            Some(n) => n.clone(),
            None => format!("?v{}_{}", v.depth, v.slot),
        }
    }

    fn push(&mut self, names: Vec<String>) {
        self.frames.push(names);
    }

    fn pop(&mut self) {
        self.frames.pop();
    }
}

fn sym(s: impl Into<String>) -> Datum {
    Datum::Sym(s.into())
}

/// Renders a whole program as a sequence of top-level forms.
pub fn program_to_datums(p: &Program) -> Vec<Datum> {
    let mut scope = Scope { frames: Vec::new() };
    let mut counter = 0u32;
    p.top_level
        .iter()
        .map(|form| match form {
            TopForm::Define { index, expr } => Datum::List(vec![
                sym("define"),
                sym(p.global_names[*index as usize].clone()),
                expr_to_datum(expr, p, &mut scope, &mut counter),
            ]),
            TopForm::Expr(expr) => expr_to_datum(expr, p, &mut scope, &mut counter),
        })
        .collect()
}

/// Renders one expression (resolved under the program's global names).
pub fn expr_to_datum_top(e: &Expr, p: &Program) -> Datum {
    let mut scope = Scope { frames: Vec::new() };
    let mut counter = 0;
    expr_to_datum(e, p, &mut scope, &mut counter)
}

fn fresh_names(def: &LambdaDef, counter: &mut u32) -> Vec<String> {
    *counter += 1;
    let c = *counter;
    (0..def.frame_size()).map(|i| format!("x{c}_{i}")).collect()
}

fn expr_to_datum(e: &Expr, p: &Program, scope: &mut Scope, counter: &mut u32) -> Datum {
    match e {
        Expr::Quote(d) => match d.as_ref() {
            Datum::Int(_) | Datum::BigInt(_) | Datum::Bool(_) | Datum::Char(_) | Datum::Str(_) => {
                d.as_ref().clone()
            }
            other => Datum::List(vec![sym("quote"), other.clone()]),
        },
        Expr::Var(v) => sym(scope.name_of(*v)),
        Expr::Global(i) => sym(p.global_names[*i as usize].clone()),
        Expr::PrimRef(prim) => sym(prim.name()),
        Expr::Lambda(def) => {
            let names = fresh_names(def, counter);
            let params: Vec<Datum> = names.iter().map(|n| sym(n.clone())).collect();
            let param_datum = if def.variadic {
                let (fixed, rest) = params.split_at(def.params as usize);
                if fixed.is_empty() {
                    rest[0].clone()
                } else {
                    Datum::Improper(fixed.to_vec(), Box::new(rest[0].clone()))
                }
            } else {
                Datum::List(params)
            };
            scope.push(names);
            let body = expr_to_datum(&def.body, p, scope, counter);
            scope.pop();
            Datum::List(vec![sym("lambda"), param_datum, body])
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => Datum::List(vec![
            sym("if"),
            expr_to_datum(cond, p, scope, counter),
            expr_to_datum(then_branch, p, scope, counter),
            expr_to_datum(else_branch, p, scope, counter),
        ]),
        Expr::App { func, args } => {
            let mut items = vec![expr_to_datum(func, p, scope, counter)];
            items.extend(args.iter().map(|a| expr_to_datum(a, p, scope, counter)));
            Datum::List(items)
        }
        Expr::Seq(exprs) => {
            let mut items = vec![sym("begin")];
            items.extend(exprs.iter().map(|x| expr_to_datum(x, p, scope, counter)));
            Datum::List(items)
        }
        Expr::SetLocal { var, value } => Datum::List(vec![
            sym("set!"),
            sym(scope.name_of(*var)),
            expr_to_datum(value, p, scope, counter),
        ]),
        Expr::SetGlobal { index, value } => Datum::List(vec![
            sym("set!"),
            sym(p.global_names[*index as usize].clone()),
            expr_to_datum(value, p, scope, counter),
        ]),
        Expr::Let { inits, body } => {
            let rendered: Vec<Datum> = inits
                .iter()
                .map(|i| expr_to_datum(i, p, scope, counter))
                .collect();
            *counter += 1;
            let c = *counter;
            let names: Vec<String> = (0..inits.len()).map(|i| format!("x{c}_{i}")).collect();
            let bindings: Vec<Datum> = names
                .iter()
                .zip(rendered)
                .map(|(n, r)| Datum::List(vec![sym(n.clone()), r]))
                .collect();
            scope.push(names);
            let body = expr_to_datum(body, p, scope, counter);
            scope.pop();
            Datum::List(vec![sym("let"), Datum::List(bindings), body])
        }
        Expr::LetRec { inits, body } => {
            *counter += 1;
            let c = *counter;
            let names: Vec<String> = (0..inits.len()).map(|i| format!("x{c}_{i}")).collect();
            scope.push(names.clone());
            let bindings: Vec<Datum> = names
                .iter()
                .zip(inits.iter())
                .map(|(n, i)| {
                    Datum::List(vec![sym(n.clone()), expr_to_datum(i, p, scope, counter)])
                })
                .collect();
            let body = expr_to_datum(body, p, scope, counter);
            scope.pop();
            Datum::List(vec![sym("letrec"), Datum::List(bindings), body])
        }
        Expr::TermC { body, label } => Datum::List(vec![
            sym("terminating/c"),
            expr_to_datum(body, p, scope, counter),
            Datum::Str(label.to_string()),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_program;

    fn render(src: &str) -> String {
        let p = compile_program(src).unwrap();
        program_to_datums(&p)
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn renders_define_and_globals() {
        let out = render("(define (f x) (+ x 1)) (f 2)");
        assert!(
            out.contains("(define f (lambda (x1_0) (+ x1_0 1)))"),
            "got: {out}"
        );
        assert!(out.contains("(f 2)"), "got: {out}");
    }

    #[test]
    fn renders_shadowing_distinctly() {
        // Inner and outer x get different generated names.
        let out = render("(lambda (x) (lambda (x) x))");
        let inner_name = out.rfind("x2_0");
        assert!(inner_name.is_some(), "inner var should be x2_0: {out}");
        assert!(out.contains("x1_0"), "outer binder should be x1_0: {out}");
    }

    #[test]
    fn renders_variadic_params() {
        let out = render("(lambda args args)");
        assert!(out.contains("(lambda x1_0 x1_0)"), "got: {out}");
        let out = render("(lambda (a . r) r)");
        assert!(out.contains("(lambda (x1_0 . x1_1) x1_1)"), "got: {out}");
    }

    #[test]
    fn roundtrip_recompiles_to_same_behavior() {
        // Render, recompile, rerun: the value must be preserved.
        for src in [
            "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 8)",
            "(let loop ([i 5] [acc 1]) (if (zero? i) acc (loop (- i 1) (* acc 2))))",
            "(define (f . xs) (length xs)) (f 1 2 3)",
            "(letrec ([even? (lambda (n) (if (zero? n) #t (odd? (- n 1))))]
                      [odd? (lambda (n) (if (zero? n) #f (even? (- n 1))))])
               (even? 9))",
        ] {
            let p1 = compile_program(src).unwrap();
            let rendered = program_to_datums(&p1)
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let v1 = sct_sexpr::parse_all(&rendered).expect("rendered output parses");
            assert!(!v1.is_empty());
            // Behavior check happens in the interp integration tests; here
            // we at least require the rendering to be valid, parseable
            // kernel syntax.
        }
    }

    #[test]
    fn quotes_and_literals() {
        let out = render("'(a 1 \"s\") #\\x 42");
        assert!(out.contains("(quote (a 1 \"s\"))"), "got: {out}");
        assert!(out.contains("#\\x"), "got: {out}");
        assert!(out.contains("42"), "got: {out}");
    }
}

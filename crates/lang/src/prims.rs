//! The primitive operations `o` of Figure 3.
//!
//! "No primitive in λSCT is allowed to cause divergence" — every primitive
//! here is a total (up to run-time type errors) operation, so the monitor
//! whitelists all of them by construction (§5: "functions that are known to
//! terminate need no instrumentation").
//!
//! The behavior of each primitive is implemented in `sct-interp`; this
//! module owns the *names* so the resolver can turn unshadowed references
//! like `car` into direct [`Prim`] references.

/// Identifies a primitive operation. The `u16` representation indexes
/// dispatch tables in the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Prim {
    // Numeric.
    Add,
    Sub,
    Mul,
    Quotient,
    Remainder,
    Modulo,
    Abs,
    Min,
    Max,
    Add1,
    Sub1,
    Gcd,
    Expt,
    NumEq,
    Lt,
    Le,
    Gt,
    Ge,
    IsZero,
    IsNegative,
    IsPositive,
    IsEven,
    IsOdd,
    IsNumber,
    IsInteger,
    // Pairs and lists.
    Cons,
    Car,
    Cdr,
    Caar,
    Cadr,
    Cdar,
    Cddr,
    Caddr,
    Cdddr,
    Cadddr,
    IsNull,
    IsPair,
    List,
    Length,
    Append,
    Reverse,
    ListRef,
    ListTail,
    Memq,
    Memv,
    Member,
    Assq,
    Assv,
    Assoc,
    IsList,
    // Equality and booleans.
    IsEq,
    IsEqv,
    IsEqual,
    Not,
    IsBoolean,
    IsSymbol,
    IsString,
    IsChar,
    IsProcedure,
    IsVoid,
    // Characters.
    CharEq,
    CharLt,
    CharToInteger,
    IntegerToChar,
    // Strings and symbols.
    StringEq,
    StringLt,
    StringLength,
    StringAppend,
    Substring,
    StringRef,
    StringToSymbol,
    SymbolToString,
    NumberToString,
    StringToNumber,
    StringToList,
    ListToString,
    // Immutable hashes (Figure 2's compile example).
    Hash,
    HashSet,
    HashRef,
    HashHasKey,
    HashCount,
    // Output and control.
    Display,
    Write,
    Newline,
    Error,
    Void,
    Apply,
    // Contract combinators (§2.3, §3.6).
    TerminatingC,
    FlatC,
    ArrowC,
    AndC,
    Contract,
}

/// `(name, prim)` pairs for every primitive, in dispatch order.
pub const PRIMS: &[(&str, Prim)] = &[
    ("+", Prim::Add),
    ("-", Prim::Sub),
    ("*", Prim::Mul),
    ("quotient", Prim::Quotient),
    ("remainder", Prim::Remainder),
    ("modulo", Prim::Modulo),
    ("abs", Prim::Abs),
    ("min", Prim::Min),
    ("max", Prim::Max),
    ("add1", Prim::Add1),
    ("sub1", Prim::Sub1),
    ("gcd", Prim::Gcd),
    ("expt", Prim::Expt),
    ("=", Prim::NumEq),
    ("<", Prim::Lt),
    ("<=", Prim::Le),
    (">", Prim::Gt),
    (">=", Prim::Ge),
    ("zero?", Prim::IsZero),
    ("negative?", Prim::IsNegative),
    ("positive?", Prim::IsPositive),
    ("even?", Prim::IsEven),
    ("odd?", Prim::IsOdd),
    ("number?", Prim::IsNumber),
    ("integer?", Prim::IsInteger),
    ("cons", Prim::Cons),
    ("car", Prim::Car),
    ("cdr", Prim::Cdr),
    ("caar", Prim::Caar),
    ("cadr", Prim::Cadr),
    ("cdar", Prim::Cdar),
    ("cddr", Prim::Cddr),
    ("caddr", Prim::Caddr),
    ("cdddr", Prim::Cdddr),
    ("cadddr", Prim::Cadddr),
    ("null?", Prim::IsNull),
    ("empty?", Prim::IsNull),
    ("pair?", Prim::IsPair),
    ("cons?", Prim::IsPair),
    ("list", Prim::List),
    ("length", Prim::Length),
    ("append", Prim::Append),
    ("reverse", Prim::Reverse),
    ("list-ref", Prim::ListRef),
    ("list-tail", Prim::ListTail),
    ("memq", Prim::Memq),
    ("memv", Prim::Memv),
    ("member", Prim::Member),
    ("assq", Prim::Assq),
    ("assv", Prim::Assv),
    ("assoc", Prim::Assoc),
    ("list?", Prim::IsList),
    ("first", Prim::Car),
    ("rest", Prim::Cdr),
    ("eq?", Prim::IsEq),
    ("eqv?", Prim::IsEqv),
    ("equal?", Prim::IsEqual),
    ("not", Prim::Not),
    ("boolean?", Prim::IsBoolean),
    ("symbol?", Prim::IsSymbol),
    ("string?", Prim::IsString),
    ("char?", Prim::IsChar),
    ("procedure?", Prim::IsProcedure),
    ("void?", Prim::IsVoid),
    ("char=?", Prim::CharEq),
    ("char<?", Prim::CharLt),
    ("char->integer", Prim::CharToInteger),
    ("integer->char", Prim::IntegerToChar),
    ("string=?", Prim::StringEq),
    ("string<?", Prim::StringLt),
    ("string-length", Prim::StringLength),
    ("string-append", Prim::StringAppend),
    ("substring", Prim::Substring),
    ("string-ref", Prim::StringRef),
    ("string->symbol", Prim::StringToSymbol),
    ("symbol->string", Prim::SymbolToString),
    ("number->string", Prim::NumberToString),
    ("string->number", Prim::StringToNumber),
    ("string->list", Prim::StringToList),
    ("list->string", Prim::ListToString),
    ("hash", Prim::Hash),
    ("hash-set", Prim::HashSet),
    ("hash-ref", Prim::HashRef),
    ("hash-has-key?", Prim::HashHasKey),
    ("hash-count", Prim::HashCount),
    ("display", Prim::Display),
    ("write", Prim::Write),
    ("newline", Prim::Newline),
    ("error", Prim::Error),
    ("void", Prim::Void),
    ("apply", Prim::Apply),
    ("terminating/c", Prim::TerminatingC),
    ("flat/c", Prim::FlatC),
    ("->/c", Prim::ArrowC),
    ("and/c", Prim::AndC),
    ("contract", Prim::Contract),
];

impl Prim {
    /// Looks up a primitive by surface name.
    ///
    /// ```
    /// use sct_lang::Prim;
    /// assert_eq!(Prim::from_name("cons"), Some(Prim::Cons));
    /// assert_eq!(Prim::from_name("rest"), Some(Prim::Cdr)); // Racket alias
    /// assert_eq!(Prim::from_name("no-such"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Prim> {
        PRIMS.iter().find(|(n, _)| *n == name).map(|(_, p)| *p)
    }

    /// The canonical surface name of this primitive.
    pub fn name(self) -> &'static str {
        PRIMS
            .iter()
            .find(|(_, p)| *p == self)
            .map(|(n, _)| *n)
            .expect("every prim has a name")
    }
}

impl std::fmt::Display for Prim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_roundtrip() {
        for (name, prim) in PRIMS {
            assert_eq!(Prim::from_name(name), Some(*prim), "lookup {name}");
        }
        // Canonical names map back to themselves (aliases map to canon).
        assert_eq!(Prim::Cdr.name(), "cdr");
        assert_eq!(Prim::IsNull.name(), "null?");
    }

    #[test]
    fn no_duplicate_names() {
        let mut names: Vec<&str> = PRIMS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PRIMS.len(), "duplicate prim name");
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(Prim::Add.to_string(), "+");
        assert_eq!(Prim::TerminatingC.to_string(), "terminating/c");
    }
}

//! The evaluation corpus of the PLDI'19 paper.
//!
//! * [`table1`] — the 28 terminating programs of Table 1, with the paper's
//!   reported verdicts for the dynamic check, the static analysis, and the
//!   three external tools (Liquid Haskell, Isabelle, ACL2 — reproduced as
//!   reported constants, since those systems cannot be run here).
//! * [`diverging`] — the §5.1.2 non-terminating programs: sabotaged
//!   versions of correct programs plus the historic `nfa` bug.
//! * [`scheme_interp`] — a Figure-2-style compiler-interpreter written *in*
//!   λSCT (the `scheme` row of Table 1 and the "Interpreted *" series of
//!   Figure 10).
//! * [`workloads`] — the six Figure-10 workloads (factorial, sum,
//!   merge-sort; direct and interpreted) with size-parameterized input
//!   generators.

pub mod diverging;
pub mod scheme_interp;
pub mod table1;
pub mod workloads;

use sct_core::monitor::TableStrategy;
use sct_interp::{
    EvalError, ExtendedOrder, Machine, MachineConfig, OrderHandle, ReverseIntOrder, SemanticsMode,
    Value,
};
use sct_lang::compile_program;

/// Which well-founded order a program needs (§3.3; Table 1's `O`
/// annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderSpec {
    /// The Figure 5 default.
    Default,
    /// Reversed integer order for ascending-toward-a-bound loops
    /// (`lh-range`, `acl2-fig-2`).
    ReverseInt,
    /// Figure 5 extended pointwise to pairs and hashes (used by the
    /// interpreter rows; see DESIGN.md).
    Extended,
}

impl OrderSpec {
    /// Materializes the order.
    pub fn handle(self) -> OrderHandle {
        match self {
            OrderSpec::Default => OrderHandle::default_order(),
            OrderSpec::ReverseInt => OrderHandle::new(ReverseIntOrder),
            OrderSpec::Extended => OrderHandle::new(ExtendedOrder),
        }
    }
}

/// A verdict as reported in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// ✓
    Pass,
    /// ✓ with termination annotations (`A`).
    PassAnnotated,
    /// ✓ with a custom partial order (`O`).
    PassCustomOrder,
    /// ✓ after rewriting to pattern matching (`R`).
    PassRewritten,
    /// ✗
    Fail,
    /// Tool does not support higher-order functions (`-H`).
    NoHigherOrder,
    /// Program is not typable in the tool (`-T`).
    NotTypable,
    /// The paper reports no entry for this cell.
    NotReported,
}

impl Verdict {
    /// True when the verdict counts as a success (with or without help).
    pub fn is_pass(self) -> bool {
        matches!(
            self,
            Verdict::Pass
                | Verdict::PassAnnotated
                | Verdict::PassCustomOrder
                | Verdict::PassRewritten
        )
    }

    /// The compact cell text used in the paper's table.
    pub fn cell(self) -> &'static str {
        match self {
            Verdict::Pass => "Y",
            Verdict::PassAnnotated => "YA",
            Verdict::PassCustomOrder => "YO",
            Verdict::PassRewritten => "YR",
            Verdict::Fail => "N",
            Verdict::NoHigherOrder => "-H",
            Verdict::NotTypable => "-T",
            Verdict::NotReported => ".",
        }
    }
}

/// One row of paper-reported verdicts.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// The paper's dynamic-checking verdict.
    pub dynamic: Verdict,
    /// The paper's static-analysis verdict.
    pub static_: Verdict,
    /// Liquid Haskell column.
    pub liquid_haskell: Verdict,
    /// Isabelle column.
    pub isabelle: Verdict,
    /// ACL2 column.
    pub acl2: Verdict,
}

/// Domain constraint on a symbolic argument for static verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// A natural number (n ≥ 0).
    Nat,
    /// A strictly positive integer.
    Pos,
    /// Any integer.
    Int,
    /// A proper list.
    List,
    /// Any value (including functions).
    Any,
}

/// What to verify statically: apply `function` to symbolic values drawn
/// from `domains` (§4.2's "apply the function on symbolic natural numbers
/// that have passed the precondition").
#[derive(Debug, Clone, Copy)]
pub struct StaticSpec {
    /// Global function name to verify.
    pub function: &'static str,
    /// One domain per parameter.
    pub domains: &'static [Domain],
    /// Result domain, assumed at summarized recursive calls (the range of
    /// the function's total-correctness contract; see DESIGN.md).
    pub result: Domain,
}

/// One corpus program.
#[derive(Debug, Clone, Copy)]
pub struct CorpusProgram {
    /// Row id as in Table 1 (e.g. `"sct-3"`).
    pub id: &'static str,
    /// What the program is / where it came from.
    pub description: &'static str,
    /// Full source: definitions plus one exercising top-level expression.
    pub source: &'static str,
    /// The order the dynamic monitor needs.
    pub order: OrderSpec,
    /// Expected value of the final expression in `write` form, when it is
    /// convenient to pin down.
    pub expected: Option<&'static str>,
    /// Paper-reported verdicts.
    pub paper: PaperRow,
    /// Static-verification request, when the row has one.
    pub static_spec: Option<StaticSpec>,
}

/// Runs a corpus program under the fully monitored semantics with its
/// declared order and the given table strategy.
///
/// # Errors
///
/// Whatever the machine reports — for Table-1 programs a [`EvalError::Sc`]
/// means the dynamic check rejected a terminating program.
pub fn run_dynamic(program: &CorpusProgram, strategy: TableStrategy) -> Result<Value, EvalError> {
    let prog = compile_program(program.source).map_err(|e| {
        EvalError::Rt(sct_interp::RtError::new(format!(
            "compile error in {}: {e}",
            program.id
        )))
    })?;
    let config = MachineConfig {
        mode: SemanticsMode::Monitored,
        order: program.order.handle(),
        ..MachineConfig::monitored(strategy)
    };
    Machine::new(&prog, config).run()
}

/// Runs a corpus program under the standard semantics with the given fuel.
///
/// # Errors
///
/// As [`run_dynamic`], plus [`EvalError::OutOfFuel`].
pub fn run_standard(program: &CorpusProgram, fuel: Option<u64>) -> Result<Value, EvalError> {
    let prog = compile_program(program.source).map_err(|e| {
        EvalError::Rt(sct_interp::RtError::new(format!(
            "compile error in {}: {e}",
            program.id
        )))
    })?;
    let config = MachineConfig {
        fuel,
        ..MachineConfig::standard()
    };
    Machine::new(&prog, config).run()
}

//! The diverging programs of §5.1.2: sabotaged versions of correct
//! programs, plus the decades-old `nfa` bug the paper's static analysis
//! was the first to find.
//!
//! "Because violation of the size-change principle tends to show up in
//! early iterations, our dynamic contracts catch the error very early" —
//! the divergence harness measures exactly that (machine steps from start
//! to `errorSC`).

use crate::{CorpusProgram, OrderSpec, PaperRow, Verdict};

const DIVERGING_ROW: PaperRow = PaperRow {
    dynamic: Verdict::Pass, // "pass" here means: divergence caught
    static_: Verdict::Pass,
    liquid_haskell: Verdict::NotReported,
    isabelle: Verdict::NotReported,
    acl2: Verdict::NotReported,
};

/// §2.1's sometimes-buggy Ackermann: `(ack m …)` instead of
/// `(ack (- m 1) …)` on line 4.
pub const BUGGY_ACK: CorpusProgram = CorpusProgram {
    id: "buggy-ack",
    description: "Ackermann with the §2.1 bug: line 4 fails to decrement m",
    source: "
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack m (ack m (- n 1)))]))
(ack 2 0)",
    order: OrderSpec::Default,
    expected: None,
    paper: DIVERGING_ROW,
    static_spec: None,
};

/// The buggy `nfa` of §5.1.2: `(state1 input)` without consuming input in
/// the `c` branch. On a `c`-leading input it loops forever.
pub const BUGGY_NFA: CorpusProgram = CorpusProgram {
    id: "buggy-nfa",
    description: "the historic nfa bug: state1 re-enters without consuming input",
    source: "
(define (state1 input)
  (and (not (null? input))
       (or (and (char=? (car input) #\\a) (state1 (cdr input)))
           (and (char=? (car input) #\\c) (state1 input))
           (state2 input))))
(define (state2 input)
  (and (not (null? input)) (char=? (car input) #\\b) (state3 (cdr input))))
(define (state3 input)
  (and (not (null? input)) (char=? (car input) #\\c) (state4 (cdr input))))
(define (state4 input)
  (and (not (null? input)) (char=? (car input) #\\d) (null? (cdr input))))
(state1 (list #\\c #\\b #\\c #\\d))",
    order: OrderSpec::Default,
    expected: None,
    paper: DIVERGING_ROW,
    static_spec: None,
};

/// A sum loop that forgets to decrement.
pub const BUGGY_SUM: CorpusProgram = CorpusProgram {
    id: "buggy-sum",
    description: "sum that never decrements its counter",
    source: "
(define (sum i acc) (if (zero? i) acc (sum i (+ acc i))))
(sum 10 0)",
    order: OrderSpec::Default,
    expected: None,
    paper: DIVERGING_ROW,
    static_spec: None,
};

/// A merge that drops neither list in one branch.
pub const BUGGY_MERGE: CorpusProgram = CorpusProgram {
    id: "buggy-merge",
    description: "merge that forgets to take cdr in the else branch",
    source: "
(define (merge xs ys)
  (cond [(null? xs) ys]
        [(null? ys) xs]
        [(< (car xs) (car ys)) (cons (car xs) (merge (cdr xs) ys))]
        [else (cons (car ys) (merge xs ys))]))
(merge '(1 3 5) '(2 4 6))",
    order: OrderSpec::Default,
    expected: None,
    paper: DIVERGING_ROW,
    static_spec: None,
};

/// Mutual recursion that ping-pongs forever.
pub const PING_PONG: CorpusProgram = CorpusProgram {
    id: "ping-pong",
    description: "mutual recursion with no descent",
    source: "
(define (ping x) (pong x))
(define (pong x) (ping x))
(ping '(a b))",
    order: OrderSpec::Default,
    expected: None,
    paper: DIVERGING_ROW,
    static_spec: None,
};

/// Figure 2's diverging compiled term: `(λx. x x)(λy. y y)` interpreted by
/// the compiler-interpreter — caught when the compiled closure re-enters
/// with an identical argument (§2.4's `c2`).
pub const OMEGA_INTERPRETED: CorpusProgram = CorpusProgram {
    id: "omega-interpreted",
    description: "Figure 2's c2: compiled Ω diverges inside the interpreter",
    source: "
(define (comp e)
  (cond [(symbol? e) (lambda (rho) (hash-ref rho e))]
        [(eq? (car e) 'lam)
         (comp-lam (car (cdr e)) (comp (caddr e)))]
        [else (comp-app (comp (car e)) (comp (cadr e)))]))
(define (comp-lam x c)
  (lambda (rho) (lambda (z) (c (hash-set rho x z)))))
(define (comp-app c1 c2)
  (lambda (rho) ((c1 rho) (c2 rho))))
(define c2 (comp '((lam x (x x)) (lam y (y y)))))
(c2 (hash))",
    order: OrderSpec::Default,
    expected: None,
    paper: DIVERGING_ROW,
    static_spec: None,
};

/// All diverging programs.
pub fn all() -> Vec<CorpusProgram> {
    vec![
        BUGGY_ACK,
        BUGGY_NFA,
        BUGGY_SUM,
        BUGGY_MERGE,
        PING_PONG,
        OMEGA_INTERPRETED,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_dynamic, run_standard};
    use sct_core::monitor::TableStrategy;
    use sct_interp::EvalError;

    #[test]
    fn all_diverge_unmonitored() {
        for p in all() {
            let r = run_standard(&p, Some(2_000_000));
            assert!(
                matches!(r, Err(EvalError::OutOfFuel)),
                "{} should exhaust fuel unmonitored, got {r:?}",
                p.id
            );
        }
    }

    #[test]
    fn all_caught_by_monitor_both_strategies() {
        for p in all() {
            for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
                let r = run_dynamic(&p, strategy);
                assert!(
                    matches!(r, Err(EvalError::Sc(_))),
                    "{} under {strategy:?}: expected errorSC, got {r:?}",
                    p.id
                );
            }
        }
    }
}

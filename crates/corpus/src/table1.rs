//! The 28 terminating programs of Table 1.
//!
//! Sources: the size-change examples of Lee–Jones–Ben-Amram (`sct-*`), the
//! higher-order SCT literature (`ho-*`), the Isabelle / ACL2 / Liquid
//! Haskell benchmark families, and the larger Scheme benchmarks (`dderiv`,
//! `deriv`, `destruct`, `div`, `nfa`, `scheme`). Each is reconstructed
//! from its published description; the paper's reported verdicts ride
//! along so the Table-1 harness can print paper-vs-measured.

use crate::scheme_interp;
use crate::{CorpusProgram, Domain, OrderSpec, PaperRow, StaticSpec, Verdict};

use Verdict::{
    Fail, NoHigherOrder, NotReported, NotTypable, Pass, PassAnnotated, PassCustomOrder,
    PassRewritten,
};

const fn row(
    dynamic: Verdict,
    static_: Verdict,
    lh: Verdict,
    isa: Verdict,
    acl2: Verdict,
) -> PaperRow {
    PaperRow {
        dynamic,
        static_,
        liquid_haskell: lh,
        isabelle: isa,
        acl2,
    }
}

/// `sct-1`: list reverse with an accumulator (LJB example 1).
pub const SCT_1: CorpusProgram = CorpusProgram {
    id: "sct-1",
    description: "reverse with accumulator (Lee-Jones-Ben-Amram ex. 1)",
    source: "
(define (rev ls a)
  (if (null? ls) a (rev (cdr ls) (cons (car ls) a))))
(rev '(1 2 3 4 5) '())",
    order: OrderSpec::Default,
    expected: Some("(5 4 3 2 1)"),
    paper: row(Pass, Pass, PassRewritten, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "rev",
        domains: &[Domain::List, Domain::Any],
        result: Domain::Any,
    }),
};

/// `sct-2`: mutual recursion accumulating a heterogeneous structure
/// (LJB example 2) — untypable as written, hence LH's ✗.
pub const SCT_2: CorpusProgram = CorpusProgram {
    id: "sct-2",
    description: "mutual recursion building a heterogeneous list (LJB ex. 2)",
    source: "
(define (f2 i x) (if (null? i) x (g2 (cdr i) x i)))
(define (g2 a b c) (f2 a (cons b c)))
(f2 '(q w e) '())",
    order: OrderSpec::Default,
    expected: None,
    paper: row(Pass, Pass, Fail, PassRewritten, Pass),
    static_spec: Some(StaticSpec {
        function: "f2",
        domains: &[Domain::List, Domain::Any],
        result: Domain::Any,
    }),
};

/// `sct-3`: the Ackermann function (§2.1, Figure 1).
pub const SCT_3: CorpusProgram = CorpusProgram {
    id: "sct-3",
    description: "Ackermann (LJB ex. 3, the paper's running example)",
    source: "
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
(ack 2 3)",
    order: OrderSpec::Default,
    expected: Some("9"),
    paper: row(Pass, Pass, PassAnnotated, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "ack",
        domains: &[Domain::Nat, Domain::Nat],
        result: Domain::Nat,
    }),
};

/// `sct-4`: permuted parameters with guards (LJB ex. 4).
pub const SCT_4: CorpusProgram = CorpusProgram {
    id: "sct-4",
    description: "permuted parameters with guards (LJB ex. 4)",
    source: "
(define (p4 m n r)
  (cond [(> r 0) (p4 m (- r 1) n)]
        [(> n 0) (p4 r (- n 1) m)]
        [else m]))
(p4 2 3 4)",
    order: OrderSpec::Default,
    expected: Some("2"),
    paper: row(Pass, Pass, Fail, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "p4",
        domains: &[Domain::Nat, Domain::Nat, Domain::Nat],
        result: Domain::Nat,
    }),
};

/// `sct-5`: descent alternating between two parameters (LJB ex. 5).
pub const SCT_5: CorpusProgram = CorpusProgram {
    id: "sct-5",
    description: "alternating descent over two lists (LJB ex. 5)",
    source: "
(define (f5 x y)
  (cond [(null? y) x]
        [(null? x) (f5 y (cdr y))]
        [else (f5 (cdr x) y)]))
(f5 '(1 2) '(3 4 5))",
    order: OrderSpec::Default,
    expected: None,
    paper: row(Pass, Pass, Fail, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "f5",
        domains: &[Domain::List, Domain::List],
        result: Domain::Any,
    }),
};

/// `sct-6`: reverse twice through a helper (LJB ex. 6).
pub const SCT_6: CorpusProgram = CorpusProgram {
    id: "sct-6",
    description: "double reversal through a helper (LJB ex. 6)",
    source: "
(define (f6 a b)
  (if (null? b) (g6 a '()) (f6 (cons (car b) a) (cdr b))))
(define (g6 c d)
  (if (null? c) d (g6 (cdr c) (cons (car c) d))))
(f6 '() '(1 2 3))",
    order: OrderSpec::Default,
    expected: Some("(1 2 3)"),
    paper: row(Pass, Pass, Fail, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "f6",
        domains: &[Domain::List, Domain::List],
        result: Domain::Any,
    }),
};

/// `ho-sc-ack`: Ackermann through the Y combinator — self-application is
/// untypable (LH, Isabelle) and higher-order (ACL2).
pub const HO_SC_ACK: CorpusProgram = CorpusProgram {
    id: "ho-sc-ack",
    description: "Ackermann via the Y combinator (self-application)",
    source: "
(define Y
  (lambda (h)
    ((lambda (x) (h (lambda (v1 v2) ((x x) v1 v2))))
     (lambda (x) (h (lambda (v1 v2) ((x x) v1 v2)))))))
(define ack
  (Y (lambda (self)
       (lambda (m n)
         (cond [(= 0 m) (+ 1 n)]
               [(= 0 n) (self (- m 1) 1)]
               [else (self (- m 1) (self m (- n 1)))])))))
(ack 2 2)",
    order: OrderSpec::Default,
    expected: Some("7"),
    paper: row(Pass, Fail, NotTypable, NotTypable, NoHigherOrder),
    static_spec: Some(StaticSpec {
        function: "ack",
        domains: &[Domain::Nat, Domain::Nat],
        result: Domain::Nat,
    }),
};

/// `ho-sct-fg`: higher-order descent in the Sereni–Jones style.
pub const HO_SCT_FG: CorpusProgram = CorpusProgram {
    id: "ho-sct-fg",
    description: "higher-order f/g pair (Sereni-Jones style)",
    source: "
(define (fh n g) (if (zero? n) (g 0) (fh (- n 1) (lambda (m) (g (+ m 1))))))
(fh 5 (lambda (x) x))",
    order: OrderSpec::Default,
    expected: Some("5"),
    paper: row(Pass, Pass, Pass, Pass, NoHigherOrder),
    static_spec: Some(StaticSpec {
        function: "fh",
        domains: &[Domain::Nat, Domain::Any],
        result: Domain::Any,
    }),
};

/// `ho-sct-fold`: folds.
pub const HO_SCT_FOLD: CorpusProgram = CorpusProgram {
    id: "ho-sct-fold",
    description: "left and right folds over lists",
    source: "
(define (foldl2 f acc xs)
  (if (null? xs) acc (foldl2 f (f acc (car xs)) (cdr xs))))
(define (foldr2 f acc xs)
  (if (null? xs) acc (f (car xs) (foldr2 f acc (cdr xs)))))
(foldl2 + (foldr2 * 1 '(1 2 3)) '(4 5 6))",
    order: OrderSpec::Default,
    expected: Some("21"),
    paper: row(Pass, Pass, PassAnnotated, Pass, NoHigherOrder),
    static_spec: Some(StaticSpec {
        function: "foldl2",
        domains: &[Domain::Any, Domain::Any, Domain::List],
        result: Domain::Any,
    }),
};

/// `isabelle-perm`: permutation test via deletion.
pub const ISABELLE_PERM: CorpusProgram = CorpusProgram {
    id: "isabelle-perm",
    description: "permutation check via element deletion",
    source: "
(define (del x xs)
  (cond [(null? xs) '()]
        [(equal? x (car xs)) (cdr xs)]
        [else (cons (car xs) (del x (cdr xs)))]))
(define (perm? xs ys)
  (cond [(null? xs) (null? ys)]
        [(member (car xs) ys) (perm? (cdr xs) (del (car xs) ys))]
        [else #f]))
(perm? '(1 2 3 4) '(4 3 1 2))",
    order: OrderSpec::Default,
    expected: Some("#t"),
    paper: row(Pass, Pass, Fail, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "perm?",
        domains: &[Domain::List, Domain::List],
        result: Domain::Any,
    }),
};

/// `isabelle-f`: nested recursion `f(f(n-1))` — the inner result defeats
/// static size reasoning.
pub const ISABELLE_F: CorpusProgram = CorpusProgram {
    id: "isabelle-f",
    description: "nested recursion f(f(n-1))",
    source: "
(define (fnest n) (if (zero? n) 0 (fnest (fnest (- n 1)))))
(fnest 6)",
    order: OrderSpec::Default,
    expected: Some("0"),
    paper: row(Pass, Fail, Fail, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "fnest",
        domains: &[Domain::Nat],
        result: Domain::Nat,
    }),
};

/// `isabelle-foo`: logarithmic descent via quotient — nonlinear for the
/// static solver.
pub const ISABELLE_FOO: CorpusProgram = CorpusProgram {
    id: "isabelle-foo",
    description: "logarithmic descent by halving",
    source: "
(define (foo n) (if (< n 2) n (foo (quotient n 2))))
(foo 1000000)",
    order: OrderSpec::Default,
    expected: Some("1"),
    paper: row(Pass, Fail, Fail, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "foo",
        domains: &[Domain::Nat],
        result: Domain::Nat,
    }),
};

/// `isabelle-bar`: subtractive gcd.
pub const ISABELLE_BAR: CorpusProgram = CorpusProgram {
    id: "isabelle-bar",
    description: "subtractive gcd",
    source: "
(define (bar a b)
  (cond [(= a b) a]
        [(< a b) (bar a (- b a))]
        [else (bar (- a b) b)]))
(bar 21 6)",
    order: OrderSpec::Default,
    expected: Some("3"),
    paper: row(Pass, Fail, Fail, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "bar",
        domains: &[Domain::Pos, Domain::Pos],
        result: Domain::Any,
    }),
};

/// `isabelle-poly`: a closure builder whose termination argument crosses
/// higher-order returns — every static tool in Table 1 fails it.
pub const ISABELLE_POLY: CorpusProgram = CorpusProgram {
    id: "isabelle-poly",
    description: "polymorphic closure builder",
    source: "
(define (build k)
  (if (zero? k) (lambda (x) x) (lambda (x) ((build (- k 1)) (+ x 1)))))
((build 4) 10)",
    order: OrderSpec::Default,
    expected: Some("14"),
    paper: row(Pass, Fail, Fail, Fail, Fail),
    static_spec: Some(StaticSpec {
        function: "build",
        domains: &[Domain::Nat],
        result: Domain::Any,
    }),
};

/// `acl2-fig-2`: ascent toward a bound — dynamic checking needs a custom
/// order (Table 1's `O`).
pub const ACL2_FIG_2: CorpusProgram = CorpusProgram {
    id: "acl2-fig-2",
    description: "count up to a bound (needs custom order)",
    source: "
(define (upto i n) (if (>= i n) 0 (+ 1 (upto (+ i 1) n))))
(upto 0 8)",
    order: OrderSpec::ReverseInt,
    expected: Some("8"),
    paper: row(PassCustomOrder, Fail, Fail, Fail, Fail),
    static_spec: Some(StaticSpec {
        function: "upto",
        domains: &[Domain::Nat, Domain::Nat],
        result: Domain::Nat,
    }),
};

/// `acl2-fig-6`: guarded mutual recursion.
pub const ACL2_FIG_6: CorpusProgram = CorpusProgram {
    id: "acl2-fig-6",
    description: "guarded mutual recursion",
    source: "
(define (dec-even n) (if (zero? n) 0 (dec-odd (- n 1))))
(define (dec-odd n) (if (zero? n) 1 (dec-even (- n 1))))
(dec-even 30)",
    order: OrderSpec::Default,
    expected: Some("0"),
    paper: row(Pass, Pass, Fail, Fail, Fail),
    static_spec: Some(StaticSpec {
        function: "dec-even",
        domains: &[Domain::Nat],
        result: Domain::Nat,
    }),
};

/// `acl2-fig-7`: descent by a gcd-sized step — needs gcd bounds statically.
pub const ACL2_FIG_7: CorpusProgram = CorpusProgram {
    id: "acl2-fig-7",
    description: "descent by gcd-sized steps",
    source: "
(define (shrink x) (if (zero? x) 0 (shrink (- x (gcd x 12)))))
(shrink 100)",
    order: OrderSpec::Default,
    expected: Some("0"),
    paper: row(Pass, Fail, Fail, Fail, Pass),
    static_spec: Some(StaticSpec {
        function: "shrink",
        domains: &[Domain::Nat],
        result: Domain::Nat,
    }),
};

/// `lh-gcd`: Euclid's algorithm — static needs `|a mod b| < |b|`.
pub const LH_GCD: CorpusProgram = CorpusProgram {
    id: "lh-gcd",
    description: "Euclid's gcd via remainder",
    source: "
(define (euclid a b) (if (zero? b) a (euclid b (remainder a b))))
(euclid 252 105)",
    order: OrderSpec::Default,
    expected: Some("21"),
    paper: row(Pass, Fail, Pass, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "euclid",
        domains: &[Domain::Nat, Domain::Nat],
        result: Domain::Nat,
    }),
};

/// `lh-map`: structural map with a functional argument.
pub const LH_MAP: CorpusProgram = CorpusProgram {
    id: "lh-map",
    description: "map over a list",
    source: "
(define (my-map f xs)
  (if (null? xs) '() (cons (f (car xs)) (my-map f (cdr xs)))))
(my-map (lambda (x) (* x x)) '(1 2 3 4))",
    order: OrderSpec::Default,
    expected: Some("(1 4 9 16)"),
    paper: row(Pass, Pass, Pass, Pass, NoHigherOrder),
    static_spec: Some(StaticSpec {
        function: "my-map",
        domains: &[Domain::Any, Domain::List],
        result: Domain::List,
    }),
};

/// `lh-merge`: merging sorted lists — lexicographic descent, the classic
/// LJB-provable shape.
pub const LH_MERGE: CorpusProgram = CorpusProgram {
    id: "lh-merge",
    description: "merge of two sorted lists",
    source: "
(define (merge xs ys)
  (cond [(null? xs) ys]
        [(null? ys) xs]
        [(< (car xs) (car ys)) (cons (car xs) (merge (cdr xs) ys))]
        [else (cons (car ys) (merge xs (cdr ys)))]))
(merge '(1 3 5) '(2 4 6))",
    order: OrderSpec::Default,
    expected: Some("(1 2 3 4 5 6)"),
    paper: row(Pass, Pass, PassAnnotated, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "merge",
        domains: &[Domain::List, Domain::List],
        result: Domain::List,
    }),
};

/// `lh-range`: ascending range — dynamic needs a custom order.
pub const LH_RANGE: CorpusProgram = CorpusProgram {
    id: "lh-range",
    description: "ascending integer range (needs custom order)",
    source: "
(define (range lo hi) (if (>= lo hi) '() (cons lo (range (+ lo 1) hi))))
(range 0 8)",
    order: OrderSpec::ReverseInt,
    expected: Some("(0 1 2 3 4 5 6 7)"),
    paper: row(PassCustomOrder, Fail, PassAnnotated, Fail, Pass),
    static_spec: Some(StaticSpec {
        function: "range",
        domains: &[Domain::Nat, Domain::Nat],
        result: Domain::List,
    }),
};

/// `lh-tfact`: tail factorial with an accumulator.
pub const LH_TFACT: CorpusProgram = CorpusProgram {
    id: "lh-tfact",
    description: "tail-recursive factorial",
    source: "
(define (tfact n acc) (if (zero? n) acc (tfact (- n 1) (* n acc))))
(tfact 10 1)",
    order: OrderSpec::Default,
    expected: Some("3628800"),
    paper: row(Pass, Pass, Pass, Pass, Pass),
    static_spec: Some(StaticSpec {
        function: "tfact",
        domains: &[Domain::Nat, Domain::Int],
        result: Domain::Int,
    }),
};

/// `dderiv`: table-driven symbolic differentiation (Gabriel benchmark).
pub const DDERIV: CorpusProgram = CorpusProgram {
    id: "dderiv",
    description: "table-driven symbolic differentiation (Gabriel)",
    source: "
(define (map-f f l) (if (null? l) '() (cons (f (car l)) (map-f f (cdr l)))))
(define (dd+ a) (cons '+ (map-f dderiv (cdr a))))
(define (dd- a) (cons '- (map-f dderiv (cdr a))))
(define (dd* a) (list '* a (cons '+ (map-f (lambda (b) (list '/ (dderiv b) b)) (cdr a)))))
(define ops (list (cons '+ dd+) (cons '- dd-) (cons '* dd*)))
(define (dderiv a)
  (if (not (pair? a))
      (if (eq? a 'x) 1 0)
      ((cdr (assq (car a) ops)) a)))
(dderiv '(+ (* 3 x x) (* a x x) (* b x) 5))",
    order: OrderSpec::Default,
    expected: None,
    paper: row(Pass, Pass, NotReported, NotReported, NotReported),
    static_spec: Some(StaticSpec {
        function: "dderiv",
        domains: &[Domain::Any],
        result: Domain::Any,
    }),
};

/// `deriv`: direct symbolic differentiation (Gabriel benchmark).
pub const DERIV: CorpusProgram = CorpusProgram {
    id: "deriv",
    description: "symbolic differentiation (Gabriel)",
    source: "
(define (map-f f l) (if (null? l) '() (cons (f (car l)) (map-f f (cdr l)))))
(define (deriv a)
  (cond [(not (pair? a)) (if (eq? a 'x) 1 0)]
        [(eq? (car a) '+) (cons '+ (map-f deriv (cdr a)))]
        [(eq? (car a) '-) (cons '- (map-f deriv (cdr a)))]
        [(eq? (car a) '*) (list '* a (cons '+ (map-f (lambda (b) (list '/ (deriv b) b)) (cdr a))))]
        [else (error 'deriv \"unknown operator\")]))
(deriv '(+ (* 3 x x) (* a x x) (* b x) 5))",
    order: OrderSpec::Default,
    expected: None,
    paper: row(Pass, Fail, NotReported, NotReported, NotReported),
    static_spec: Some(StaticSpec {
        function: "deriv",
        domains: &[Domain::Any],
        result: Domain::Any,
    }),
};

/// `destruct`: list surgery loops (functional analog of the Gabriel
/// destructive benchmark; see DESIGN.md on the mutation substitution).
pub const DESTRUCT: CorpusProgram = CorpusProgram {
    id: "destruct",
    description: "list rotation and rebuilding (Gabriel destruct, functional analog)",
    source: "
(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))
(define (rot l n)
  (if (zero? n) l (rot (append (cdr l) (list (car l))) (- n 1))))
(define (churn l k)
  (if (zero? k) (length l) (churn (rot l k) (- k 1))))
(churn (iota 8) 8)",
    order: OrderSpec::Default,
    expected: Some("8"),
    paper: row(Pass, Fail, NotReported, NotReported, NotReported),
    static_spec: Some(StaticSpec {
        function: "churn",
        domains: &[Domain::List, Domain::Nat],
        result: Domain::Any,
    }),
};

/// `div`: dividing list lengths by two (Gabriel benchmark).
pub const DIV: CorpusProgram = CorpusProgram {
    id: "div",
    description: "list halving, iterative and recursive (Gabriel div)",
    source: "
(define (create-n n) (if (zero? n) '() (cons '() (create-n (- n 1)))))
(define (iterative-div2 l) (if (null? l) '() (cons (car l) (iterative-div2 (cddr l)))))
(define (recursive-div2 l) (if (null? l) '() (cons (car l) (recursive-div2 (cddr l)))))
(+ (length (iterative-div2 (create-n 20))) (length (recursive-div2 (create-n 20))))",
    order: OrderSpec::Default,
    expected: Some("20"),
    paper: row(Pass, Pass, NotReported, NotReported, NotReported),
    static_spec: Some(StaticSpec {
        function: "iterative-div2",
        domains: &[Domain::List],
        result: Domain::List,
    }),
};

/// `nfa`: the decades-old automaton benchmark of §5.1.2 — here with the
/// bug *fixed* (the diverging original lives in the diverging corpus).
pub const NFA: CorpusProgram = CorpusProgram {
    id: "nfa",
    description: "NFA for ((a|c)*bcd)|(a*bc) on a^133 bc (fixed version)",
    source: "
(define (state1 input)
  (and (not (null? input))
       (or (and (char=? (car input) #\\a) (state1 (cdr input)))
           (and (char=? (car input) #\\c) (state1 (cdr input)))
           (state2 input))))
(define (state2 input)
  (and (not (null? input)) (char=? (car input) #\\b) (state3 (cdr input))))
(define (state3 input)
  (and (not (null? input)) (char=? (car input) #\\c) (state4 (cdr input))))
(define (state4 input)
  (and (not (null? input)) (char=? (car input) #\\d) (null? (cdr input))))
(define (stateA input)
  (and (not (null? input))
       (or (and (char=? (car input) #\\a) (stateA (cdr input)))
           (stateB input))))
(define (stateB input)
  (and (not (null? input)) (char=? (car input) #\\b) (stateC (cdr input))))
(define (stateC input)
  (and (not (null? input)) (char=? (car input) #\\c) (null? (cdr input))))
(define (run-nfa input) (or (state1 input) (stateA input)))
(define (make-input n)
  (if (zero? n) (list #\\b #\\c) (cons #\\a (make-input (- n 1)))))
(run-nfa (make-input 133))",
    order: OrderSpec::Default,
    expected: Some("#t"),
    paper: row(Pass, Pass, NotReported, NotReported, NotReported),
    static_spec: Some(StaticSpec {
        function: "run-nfa",
        domains: &[Domain::List],
        result: Domain::Any,
    }),
};

/// `scheme`: the compiler-interpreter (Figure 2 style) running tree
/// merge-sort over strings — the paper's largest benchmark.
pub const SCHEME: CorpusProgram = CorpusProgram {
    id: "scheme",
    description: "Scheme interpreter (Figure-2 compile style) running merge-sort on strings",
    source: scheme_interp::SCHEME_ROW_SOURCE,
    order: OrderSpec::Extended,
    expected: None,
    paper: row(Pass, Fail, NotReported, NotReported, NotReported),
    static_spec: None,
};

/// All Table-1 rows in the paper's order.
pub fn all() -> Vec<CorpusProgram> {
    vec![
        SCT_1,
        SCT_2,
        SCT_3,
        SCT_4,
        SCT_5,
        SCT_6,
        HO_SC_ACK,
        HO_SCT_FG,
        HO_SCT_FOLD,
        ISABELLE_PERM,
        ISABELLE_F,
        ISABELLE_FOO,
        ISABELLE_BAR,
        ISABELLE_POLY,
        ACL2_FIG_2,
        ACL2_FIG_6,
        ACL2_FIG_7,
        LH_GCD,
        LH_MAP,
        LH_MERGE,
        LH_RANGE,
        LH_TFACT,
        DDERIV,
        DERIV,
        DESTRUCT,
        DIV,
        NFA,
        SCHEME,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_present_and_distinct() {
        let rows = all();
        assert_eq!(rows.len(), 28, "all 28 paper rows present");
        let mut ids: Vec<&str> = rows.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), rows.len(), "duplicate row id");
    }

    #[test]
    fn paper_dynamic_column_all_pass() {
        // Table 1 reports the dynamic check passing (possibly with a custom
        // order) on every row.
        for row in all() {
            assert!(row.paper.dynamic.is_pass(), "{}", row.id);
        }
    }
}

//! A Scheme interpreter written *in* λSCT, in the compile-to-closures
//! style of Figure 2.
//!
//! §2.4 demonstrates dynamic enforcement on an interpreter that "first
//! compiles the term to a procedure and then applies this procedure to an
//! environment"; the paper's largest benchmark (`scheme`, 1,100 lines of
//! R5RS) follows the same architecture. This is the corresponding
//! substrate, scaled to what the Figure-10 workloads need:
//!
//! * `comp` compiles an expression (S-expression data) to a λSCT closure
//!   taking an environment hash — structural recursion, trivially SCT.
//! * Interpreted lambdas of arity 1–3 compile to host closures of the
//!   *same* arity, so the monitor sees interpreted arguments as separate
//!   host arguments and interpreted descent (e.g. `n − 1`) becomes host
//!   argument descent.
//! * Environments are immutable hashes; the per-body compiled closures are
//!   re-applied along interpreted recursion with pointwise-descending
//!   environments, which the `ExtendedOrder` recognizes (see DESIGN.md).
//! * Globals live in a `set!`-updated table built before `main` runs.
//!
//! Interpreted programs avoid `let` in recursive paths (a `let` would put
//! unrelated intermediate values into the environment and break the
//! pointwise descent — the same restriction the paper's Figure 2 dialect
//! has, since its λ-calculus has no `let` at all).

/// The interpreter: defines `(run-program prog arg)` which installs the
/// program's `define`s and calls its `main` with `arg`.
pub const INTERPRETER: &str = r#"
;; ----------------------------------------------------------------------
;; Figure-2-style compiler-interpreter.
;; ----------------------------------------------------------------------
(define genv (hash))

(define (prim-1? s)
  (memq s '(zero? null? pair? not car cdr length)))
(define (prim-2? s)
  (memq s '(+ - * quotient remainder = < <= cons string<? string=? eq?)))

(define (apply-prim-1 s a)
  (cond [(eq? s 'zero?) (zero? a)]
        [(eq? s 'null?) (null? a)]
        [(eq? s 'pair?) (pair? a)]
        [(eq? s 'not) (not a)]
        [(eq? s 'car) (car a)]
        [(eq? s 'cdr) (cdr a)]
        [(eq? s 'length) (length a)]
        [else (error 'interp "unknown unary primitive")]))

(define (apply-prim-2 s a b)
  (cond [(eq? s '+) (+ a b)]
        [(eq? s '-) (- a b)]
        [(eq? s '*) (* a b)]
        [(eq? s 'quotient) (quotient a b)]
        [(eq? s 'remainder) (remainder a b)]
        [(eq? s '=) (= a b)]
        [(eq? s '<) (< a b)]
        [(eq? s '<=) (<= a b)]
        [(eq? s 'cons) (cons a b)]
        [(eq? s 'string<?) (string<? a b)]
        [(eq? s 'string=?) (string=? a b)]
        [(eq? s 'eq?) (eq? a b)]
        [else (error 'interp "unknown binary primitive")]))

;; comp : expr -> (env-hash -> value)
(define (comp e)
  (cond
    [(number? e) (lambda (r) e)]
    [(string? e) (lambda (r) e)]
    [(boolean? e) (lambda (r) e)]
    [(symbol? e) (comp-var e)]
    [(eq? (car e) 'quote) (comp-quote (cadr e))]
    [(eq? (car e) 'lambda) (comp-lambda (cadr e) (caddr e))]
    [(eq? (car e) 'if) (comp-if (comp (cadr e)) (comp (caddr e)) (comp (cadddr e)))]
    [(prim-1? (car e)) (comp-prim-1 (car e) (comp (cadr e)))]
    [(prim-2? (car e)) (comp-prim-2 (car e) (comp (cadr e)) (comp (caddr e)))]
    [else (comp-app e)]))

(define (comp-var x)
  (lambda (r) (if (hash-has-key? r x) (hash-ref r x) (hash-ref genv x))))

(define (comp-quote d)
  (lambda (r) d))

(define (comp-if cc ct cf)
  (lambda (r) (if (cc r) (ct r) (cf r))))

(define (comp-prim-1 op c1)
  (lambda (r) (apply-prim-1 op (c1 r))))

(define (comp-prim-2 op c1 c2)
  (lambda (r) (apply-prim-2 op (c1 r) (c2 r))))

;; Interpreted lambdas of arity 1..3 become host closures of the same
;; arity, so interpreted argument descent is host argument descent.
(define (comp-lambda params body)
  (comp-lambda-arity params (comp body)))

(define (comp-lambda-arity params c)
  (cond
    [(null? (cdr params))
     (lambda (r)
       (lambda (z1) (c (hash-set r (car params) z1))))]
    [(null? (cddr params))
     (lambda (r)
       (lambda (z1 z2)
         (c (hash-set (hash-set r (car params) z1) (cadr params) z2))))]
    [else
     (lambda (r)
       (lambda (z1 z2 z3)
         (c (hash-set (hash-set (hash-set r (car params) z1)
                                (cadr params) z2)
                      (caddr params) z3))))]))

(define (comp-app e)
  (cond
    [(null? (cddr e))
     (comp-app-1 (comp (car e)) (comp (cadr e)))]
    [(null? (cdddr e))
     (comp-app-2 (comp (car e)) (comp (cadr e)) (comp (caddr e)))]
    [else
     (comp-app-3 (comp (car e)) (comp (cadr e)) (comp (caddr e)) (comp (cadddr e)))]))

(define (comp-app-1 cf c1)
  (lambda (r) ((cf r) (c1 r))))
(define (comp-app-2 cf c1 c2)
  (lambda (r) ((cf r) (c1 r) (c2 r))))
(define (comp-app-3 cf c1 c2 c3)
  (lambda (r) ((cf r) (c1 r) (c2 r) (c3 r))))

;; Top level: a program is a list of (define (f params...) body) followed
;; by nothing; run-program installs them and calls main.
(define (install-defines defs)
  (if (null? defs)
      'done
      (begin
        (set! genv
              (hash-set genv
                        (car (cadr (car defs)))
                        ((comp-lambda (cdr (cadr (car defs))) (caddr (car defs)))
                         (hash))))
        (install-defines (cdr defs)))))

(define (run-program prog arg)
  (begin
    (set! genv (hash))
    (install-defines prog)
    ((hash-ref genv 'main) arg)))
"#;

/// Interpreted factorial (the "Interpreted Factorial" series of Fig. 10).
pub const TARGET_FACT: &str = "
(define (main n) (if (zero? n) 1 (* n (main (- n 1)))))";

/// Interpreted sum, non-accumulating so the interpreted environment
/// descends pointwise ("Interpreted Sum" of Fig. 10).
pub const TARGET_SUM: &str = "
(define (main n) (if (zero? n) 0 (+ n (main (- n 1)))))";

/// Interpreted merge-sort over a pre-split *tree* of strings: leaves are
/// strings, nodes are pairs; recursion is on subterms, which keeps the
/// interpreter's environment chains descending ("Interpreted Merge-sort").
pub const TARGET_MSORT: &str = "
(define (merge2 a b)
  (if (null? a) b
      (if (null? b) a
          (if (string<? (car a) (car b))
              (cons (car a) (merge2 (cdr a) b))
              (cons (car b) (merge2 a (cdr b)))))))
(define (main t)
  (if (pair? t)
      (merge2 (main (car t)) (main (cdr t)))
      (cons t '())))";

/// Composes the interpreter with a target program: the resulting λSCT
/// source defines `(go arg)` that runs the target's `main` on `arg`.
pub fn compose(target: &str) -> String {
    format!(
        "{INTERPRETER}\n(define target-prog '({target}\n))\n(define (go x) (run-program target-prog x))\n"
    )
}

/// The Table-1 `scheme` row: the interpreter sorting a small tree of
/// strings, exercised end to end.
pub const SCHEME_ROW_SOURCE: &str = concat!(
    r#"
;; ----------------------------------------------------------------------
;; Figure-2-style compiler-interpreter.
;; ----------------------------------------------------------------------
(define genv (hash))

(define (prim-1? s)
  (memq s '(zero? null? pair? not car cdr length)))
(define (prim-2? s)
  (memq s '(+ - * quotient remainder = < <= cons string<? string=? eq?)))

(define (apply-prim-1 s a)
  (cond [(eq? s 'zero?) (zero? a)]
        [(eq? s 'null?) (null? a)]
        [(eq? s 'pair?) (pair? a)]
        [(eq? s 'not) (not a)]
        [(eq? s 'car) (car a)]
        [(eq? s 'cdr) (cdr a)]
        [(eq? s 'length) (length a)]
        [else (error 'interp "unknown unary primitive")]))

(define (apply-prim-2 s a b)
  (cond [(eq? s '+) (+ a b)]
        [(eq? s '-) (- a b)]
        [(eq? s '*) (* a b)]
        [(eq? s 'quotient) (quotient a b)]
        [(eq? s 'remainder) (remainder a b)]
        [(eq? s '=) (= a b)]
        [(eq? s '<) (< a b)]
        [(eq? s '<=) (<= a b)]
        [(eq? s 'cons) (cons a b)]
        [(eq? s 'string<?) (string<? a b)]
        [(eq? s 'string=?) (string=? a b)]
        [(eq? s 'eq?) (eq? a b)]
        [else (error 'interp "unknown binary primitive")]))

(define (comp e)
  (cond
    [(number? e) (lambda (r) e)]
    [(string? e) (lambda (r) e)]
    [(boolean? e) (lambda (r) e)]
    [(symbol? e) (comp-var e)]
    [(eq? (car e) 'quote) (comp-quote (cadr e))]
    [(eq? (car e) 'lambda) (comp-lambda (cadr e) (caddr e))]
    [(eq? (car e) 'if) (comp-if (comp (cadr e)) (comp (caddr e)) (comp (cadddr e)))]
    [(prim-1? (car e)) (comp-prim-1 (car e) (comp (cadr e)))]
    [(prim-2? (car e)) (comp-prim-2 (car e) (comp (cadr e)) (comp (caddr e)))]
    [else (comp-app e)]))

(define (comp-var x)
  (lambda (r) (if (hash-has-key? r x) (hash-ref r x) (hash-ref genv x))))

(define (comp-quote d)
  (lambda (r) d))

(define (comp-if cc ct cf)
  (lambda (r) (if (cc r) (ct r) (cf r))))

(define (comp-prim-1 op c1)
  (lambda (r) (apply-prim-1 op (c1 r))))

(define (comp-prim-2 op c1 c2)
  (lambda (r) (apply-prim-2 op (c1 r) (c2 r))))

(define (comp-lambda params body)
  (comp-lambda-arity params (comp body)))

(define (comp-lambda-arity params c)
  (cond
    [(null? (cdr params))
     (lambda (r)
       (lambda (z1) (c (hash-set r (car params) z1))))]
    [(null? (cddr params))
     (lambda (r)
       (lambda (z1 z2)
         (c (hash-set (hash-set r (car params) z1) (cadr params) z2))))]
    [else
     (lambda (r)
       (lambda (z1 z2 z3)
         (c (hash-set (hash-set (hash-set r (car params) z1)
                                (cadr params) z2)
                      (caddr params) z3))))]))

(define (comp-app e)
  (cond
    [(null? (cddr e))
     (comp-app-1 (comp (car e)) (comp (cadr e)))]
    [(null? (cdddr e))
     (comp-app-2 (comp (car e)) (comp (cadr e)) (comp (caddr e)))]
    [else
     (comp-app-3 (comp (car e)) (comp (cadr e)) (comp (caddr e)) (comp (cadddr e)))]))

(define (comp-app-1 cf c1)
  (lambda (r) ((cf r) (c1 r))))
(define (comp-app-2 cf c1 c2)
  (lambda (r) ((cf r) (c1 r) (c2 r))))
(define (comp-app-3 cf c1 c2 c3)
  (lambda (r) ((cf r) (c1 r) (c2 r) (c3 r))))

(define (install-defines defs)
  (if (null? defs)
      'done
      (begin
        (set! genv
              (hash-set genv
                        (car (cadr (car defs)))
                        ((comp-lambda (cdr (cadr (car defs))) (caddr (car defs)))
                         (hash))))
        (install-defines (cdr defs)))))

(define (run-program prog arg)
  (begin
    (set! genv (hash))
    (install-defines prog)
    ((hash-ref genv 'main) arg)))
"#,
    r#"
;; The interpreted program: tree merge-sort over strings.
(define target-prog
  '((define (merge2 a b)
      (if (null? a) b
          (if (null? b) a
              (if (string<? (car a) (car b))
                  (cons (car a) (merge2 (cdr a) b))
                  (cons (car b) (merge2 a (cdr b)))))))
    (define (main t)
      (if (pair? t)
          (merge2 (main (car t)) (main (cdr t)))
          (cons t '())))))
(run-program target-prog
             (cons (cons "delta" "alpha") (cons (cons "echo" "bravo") "charlie")))
"#
);

#[cfg(test)]
mod tests {
    use super::*;
    use sct_interp::eval_str;

    #[test]
    fn interpreter_runs_fact_standard() {
        let src = format!("{}\n(go 10)", compose(TARGET_FACT));
        let v = eval_str(&src).unwrap();
        assert_eq!(v.to_write_string(), "3628800");
    }

    #[test]
    fn interpreter_runs_sum_standard() {
        let src = format!("{}\n(go 100)", compose(TARGET_SUM));
        let v = eval_str(&src).unwrap();
        assert_eq!(v.to_write_string(), "5050");
    }

    #[test]
    fn interpreter_runs_msort_standard() {
        // Tree ((d . a) . ((e . b) . c)) sorts to (a b c d e).
        let src = format!(
            "{}\n(go (cons (cons \"d\" \"a\") (cons (cons \"e\" \"b\") \"c\")))",
            compose(TARGET_MSORT)
        );
        let v = eval_str(&src).unwrap();
        assert_eq!(v.to_write_string(), "(\"a\" \"b\" \"c\" \"d\" \"e\")");
    }

    #[test]
    fn scheme_row_source_runs_standard() {
        let v = eval_str(SCHEME_ROW_SOURCE).unwrap();
        assert_eq!(
            v.to_write_string(),
            "(\"alpha\" \"bravo\" \"charlie\" \"delta\" \"echo\")"
        );
    }
}

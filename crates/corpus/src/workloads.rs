//! The Figure-10 workloads: factorial, sum, and merge-sort — run directly
//! and inside the Scheme interpreter — with size-parameterized inputs.
//!
//! The paper's figure sweeps input size on the x axis and compares three
//! configurations: unchecked, continuation-mark monitoring, imperative
//! monitoring. The shapes it demonstrates:
//!
//! * `factorial` does significant (bignum) work between calls → negligible
//!   monitoring overhead;
//! * `sum` does almost no work per call → large overhead, especially for
//!   the persistent-table (continuation-mark) strategy in tight loops;
//! * `merge-sort` carries large data structures in its arguments → the
//!   monitor's pairwise order checks dominate;
//! * the interpreted versions pay the interpreter's own monitored calls.

use crate::scheme_interp;
use crate::{Domain, OrderSpec};
use sct_bignum::Int;
use sct_interp::Value;

/// One Figure-10 workload.
pub struct Workload {
    /// Row id, e.g. `"sum"` or `"interp-msort"`.
    pub id: &'static str,
    /// Human-readable label as in the figure.
    pub label: &'static str,
    /// λSCT source defining the entry function.
    pub source: String,
    /// Name of the entry function to apply.
    pub entry: &'static str,
    /// The order the monitor should use.
    pub order: OrderSpec,
    /// Builds the argument vector for a given input size.
    pub make_args: fn(u64) -> Vec<Value>,
    /// Checks the result for a given input size.
    pub check: fn(u64, &Value) -> bool,
    /// Declared verification signature of the entry — one [`Domain`] per
    /// parameter plus the result domain — used by the hybrid bench column
    /// to pin the static pre-pass instead of the automatic domain ladder.
    /// `None` leaves the ladder in charge (interpreted workloads, whose
    /// meta-circular loops the verifier cannot discharge anyway).
    pub sig: Option<(&'static [Domain], Domain)>,
}

/// Deterministic pseudo-random generator (LCG) for workload inputs.
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493),
        }
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }
}

/// Direct factorial (non-tail; bignum multiplication between calls).
pub const FACT_SRC: &str = "
(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))";

/// Direct sum (tail-recursive; almost no work per call).
pub const SUM_SRC: &str = "
(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))";

/// Ackermann (Figure 1's running example): deep non-tail self-recursion
/// with almost no work per call — the most monitor-intensive loop shape,
/// since every call re-enters the same closure's dynamic extent.
pub const ACK_SRC: &str = "
(define (ack m n)
  (cond [(zero? m) (+ n 1)]
        [(zero? n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))";

/// Direct merge-sort threading explicit lengths so descent is on integers
/// (lists produced by take/drop are not subterms; see DESIGN.md).
pub const MSORT_SRC: &str = "
(define (take-n l k) (if (zero? k) '() (cons (car l) (take-n (cdr l) (- k 1)))))
(define (drop-n l k) (if (zero? k) l (drop-n (cdr l) (- k 1))))
(define (merge xs ys)
  (cond [(null? xs) ys]
        [(null? ys) xs]
        [(< (car xs) (car ys)) (cons (car xs) (merge (cdr xs) ys))]
        [else (cons (car ys) (merge xs (cdr ys)))]))
(define (msort-run l n)
  (if (< n 2)
      l
      (merge (msort-run (take-n l (quotient n 2)) (quotient n 2))
             (msort-run (drop-n l (quotient n 2)) (- n (quotient n 2))))))
(define (msort l) (msort-run l (length l)))";

fn int_arg(n: u64) -> Vec<Value> {
    vec![Value::int(n as i64)]
}

fn sum_args(n: u64) -> Vec<Value> {
    vec![Value::int(n as i64), Value::int(0)]
}

fn ack_args(n: u64) -> Vec<Value> {
    vec![Value::int(2), Value::int(n as i64)]
}

fn check_ack(n: u64, v: &Value) -> bool {
    // ack(2, n) = 2n + 3.
    let Some(got) = v.to_int() else { return false };
    got == Int::from(2 * n as i64 + 3)
}

fn random_int_list(n: u64) -> Value {
    let mut lcg = Lcg::new(n ^ 0x5c17);
    Value::list(
        (0..n)
            .map(|_| Value::int((lcg.next_u64() % 100_000) as i64))
            .collect::<Vec<_>>(),
    )
}

fn msort_args(n: u64) -> Vec<Value> {
    vec![random_int_list(n)]
}

/// A balanced binary tree of `n` pseudo-random lowercase strings, as the
/// interpreted merge-sort expects.
pub fn random_string_tree(n: u64) -> Value {
    fn string_of(x: u64) -> Value {
        let mut s = String::new();
        let mut v = x;
        for _ in 0..6 {
            s.push((b'a' + (v % 26) as u8) as char);
            v /= 26;
        }
        Value::str(s)
    }
    fn build(items: &[Value]) -> Value {
        match items.len() {
            0 => Value::str("only"),
            1 => items[0].clone(),
            len => {
                let mid = len / 2;
                Value::cons(build(&items[..mid]), build(&items[mid..]))
            }
        }
    }
    let mut lcg = Lcg::new(n ^ 0x7ee5);
    let items: Vec<Value> = (0..n.max(1)).map(|_| string_of(lcg.next_u64())).collect();
    build(&items)
}

fn tree_args(n: u64) -> Vec<Value> {
    vec![random_string_tree(n)]
}

fn check_fact(n: u64, v: &Value) -> bool {
    let Some(got) = v.to_int() else { return false };
    let mut expect = Int::one();
    for i in 1..=n as i64 {
        expect = &expect * &Int::from(i);
    }
    got == expect
}

fn check_sum(n: u64, v: &Value) -> bool {
    let Some(got) = v.to_int() else { return false };
    let n = n as i64;
    got == Int::from(n * (n + 1) / 2)
}

fn check_sorted_ints(n: u64, v: &Value) -> bool {
    let Some(items) = v.list_to_vec() else {
        return false;
    };
    if items.len() != n as usize {
        return false;
    }
    items.windows(2).all(|w| match (&w[0], &w[1]) {
        (Value::Fix(a), Value::Fix(b)) => a <= b,
        (a, b) => match (a.to_int(), b.to_int()) {
            (Some(a), Some(b)) => a <= b,
            _ => false,
        },
    })
}

fn check_sorted_strings(n: u64, v: &Value) -> bool {
    let Some(items) = v.list_to_vec() else {
        return false;
    };
    if items.len() != n.max(1) as usize {
        return false;
    }
    items.windows(2).all(|w| match (&w[0], &w[1]) {
        (Value::Str(a), Value::Str(b)) => a <= b,
        _ => false,
    })
}

/// The Figure-10 workloads in the figure's order, plus Ackermann (the
/// paper's §2.1 running example) as the loop-heaviest monitored case.
pub fn fig10() -> Vec<Workload> {
    vec![
        Workload {
            id: "fact",
            label: "Factorial",
            source: FACT_SRC.to_string(),
            entry: "fact",
            order: OrderSpec::Default,
            make_args: int_arg,
            check: check_fact,
            sig: Some((&[Domain::Nat], Domain::Any)),
        },
        Workload {
            id: "sum",
            label: "Sum",
            source: SUM_SRC.to_string(),
            entry: "sum",
            order: OrderSpec::Default,
            make_args: sum_args,
            check: check_sum,
            sig: Some((&[Domain::Nat, Domain::Nat], Domain::Any)),
        },
        Workload {
            id: "ack",
            label: "Ackermann",
            source: ACK_SRC.to_string(),
            entry: "ack",
            order: OrderSpec::Default,
            make_args: ack_args,
            check: check_ack,
            sig: Some((&[Domain::Nat, Domain::Nat], Domain::Nat)),
        },
        Workload {
            id: "msort",
            label: "Merge-sort",
            source: MSORT_SRC.to_string(),
            entry: "msort",
            order: OrderSpec::Default,
            make_args: msort_args,
            check: check_sorted_ints,
            sig: Some((&[Domain::List], Domain::List)),
        },
        Workload {
            id: "interp-fact",
            label: "Interpreted Factorial",
            source: scheme_interp::compose(scheme_interp::TARGET_FACT).to_string(),
            entry: "go",
            order: OrderSpec::Extended,
            make_args: int_arg,
            check: check_fact,
            sig: None,
        },
        Workload {
            id: "interp-sum",
            label: "Interpreted Sum",
            source: scheme_interp::compose(scheme_interp::TARGET_SUM).to_string(),
            entry: "go",
            order: OrderSpec::Extended,
            make_args: int_arg,
            check: |n, v| {
                let Some(got) = v.to_int() else { return false };
                let n = n as i64;
                got == Int::from(n * (n + 1) / 2)
            },
            sig: None,
        },
        Workload {
            id: "interp-msort",
            label: "Interpreted Merge-sort",
            source: scheme_interp::compose(scheme_interp::TARGET_MSORT).to_string(),
            entry: "go",
            order: OrderSpec::Extended,
            make_args: tree_args,
            check: check_sorted_strings,
            sig: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::monitor::TableStrategy;
    use sct_interp::{Machine, MachineConfig, SemanticsMode};
    use sct_lang::compile_program;

    fn run(w: &Workload, n: u64, mode: SemanticsMode, strategy: TableStrategy) -> Value {
        let prog = compile_program(&w.source)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", w.id));
        let config = MachineConfig {
            mode,
            order: w.order.handle(),
            ..MachineConfig::monitored(strategy)
        };
        let mut m = Machine::new(&prog, config);
        m.run()
            .unwrap_or_else(|e| panic!("{}: program body failed: {e}", w.id));
        let f = m
            .global(w.entry)
            .unwrap_or_else(|| panic!("{}: no entry {}", w.id, w.entry));
        m.call(f, (w.make_args)(n))
            .unwrap_or_else(|e| panic!("{} (n={n}, {mode:?}, {strategy:?}): {e}", w.id))
    }

    #[test]
    fn workloads_run_unchecked() {
        for w in fig10() {
            let n = 12;
            let v = run(&w, n, SemanticsMode::Standard, TableStrategy::Imperative);
            assert!(
                (w.check)(n, &v),
                "{} produced {}",
                w.id,
                v.to_write_string()
            );
        }
    }

    #[test]
    fn workloads_run_monitored_imperative() {
        for w in fig10() {
            let n = 12;
            let v = run(&w, n, SemanticsMode::Monitored, TableStrategy::Imperative);
            assert!(
                (w.check)(n, &v),
                "{} produced {}",
                w.id,
                v.to_write_string()
            );
        }
    }

    #[test]
    fn workloads_run_monitored_cm() {
        for w in fig10() {
            let n = 12;
            let v = run(
                &w,
                n,
                SemanticsMode::Monitored,
                TableStrategy::ContinuationMark,
            );
            assert!(
                (w.check)(n, &v),
                "{} produced {}",
                w.id,
                v.to_write_string()
            );
        }
    }

    #[test]
    fn tree_builder_is_deterministic() {
        let a = random_string_tree(16);
        let b = random_string_tree(16);
        assert!(sct_interp::equal(&a, &b));
    }
}

//! Table 1, dynamic column: every terminating corpus program must run to
//! its value under full monitoring (with its declared order), matching the
//! paper's ✓ verdicts; and the programs that need a custom order must
//! *fail* under the default order (that is why the paper annotates them).

use sct_core::monitor::TableStrategy;
use sct_corpus::{run_dynamic, run_standard, table1, CorpusProgram, OrderSpec};
use sct_interp::{EvalError, Machine, MachineConfig, SemanticsMode};
use sct_lang::compile_program;

fn strategies() -> [TableStrategy; 2] {
    [TableStrategy::Imperative, TableStrategy::ContinuationMark]
}

#[test]
fn every_row_terminates_standard() {
    for p in table1::all() {
        let v = run_standard(&p, Some(200_000_000))
            .unwrap_or_else(|e| panic!("{} failed standard evaluation: {e}", p.id));
        if let Some(expected) = p.expected {
            assert_eq!(v.to_write_string(), expected, "{}", p.id);
        }
    }
}

#[test]
fn dynamic_column_matches_paper() {
    for p in table1::all() {
        for strategy in strategies() {
            let got = run_dynamic(&p, strategy);
            assert!(
                got.is_ok(),
                "{} (paper: {}): dynamic check rejected a terminating program under {strategy:?}: {}",
                p.id,
                p.paper.dynamic.cell(),
                got.unwrap_err()
            );
        }
    }
}

#[test]
fn dynamic_agrees_with_standard_value() {
    // Soundness (Theorem 3.2): when the monitored run produces a value, it
    // is the value the standard semantics produces.
    for p in table1::all() {
        let standard = run_standard(&p, Some(200_000_000)).unwrap();
        let monitored = run_dynamic(&p, TableStrategy::Imperative).unwrap();
        assert!(
            sct_interp::equal(&standard, &monitored),
            "{}: standard {} != monitored {}",
            p.id,
            standard.to_write_string(),
            monitored.to_write_string()
        );
    }
}

#[test]
fn custom_order_rows_need_their_order() {
    // acl2-fig-2 and lh-range carry the `O` annotation: under the default
    // Figure-5 order the monitor (correctly) rejects their ascent.
    for p in table1::all() {
        if p.order != OrderSpec::ReverseInt {
            continue;
        }
        let with_default = CorpusProgram {
            order: OrderSpec::Default,
            ..p
        };
        let got = run_dynamic(&with_default, TableStrategy::Imperative);
        assert!(
            matches!(got, Err(EvalError::Sc(_))),
            "{} should violate under the default order, got {got:?}",
            p.id
        );
    }
}

#[test]
fn call_sequence_semantics_clean_on_default_order_rows() {
    // Rows that pass with the default order record no violations under the
    // unenforced call-sequence semantics either (completeness, Lemma 3.4/3.5).
    for p in table1::all() {
        if p.order != OrderSpec::Default {
            continue;
        }
        let prog = compile_program(p.source).unwrap();
        let config = MachineConfig {
            mode: SemanticsMode::CallSeqCollect,
            order: p.order.handle(),
            ..MachineConfig::default()
        };
        let mut m = Machine::new(&prog, config);
        m.run().unwrap_or_else(|e| panic!("{}: {e}", p.id));
        assert!(
            m.violations.is_empty(),
            "{}: call-sequence semantics recorded violations: {}",
            p.id,
            m.violations[0]
        );
    }
}

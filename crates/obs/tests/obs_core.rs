//! Obs-core coverage: histogram bucket boundaries, quantile estimates
//! property-tested against a sorted reference, and snapshot coherence
//! under concurrent increments.

use proptest::prelude::*;
use sct_obs::{bucket_index, bucket_lower, bucket_upper, Histogram, Registry, BUCKETS};

#[test]
fn bucket_boundaries_are_log2() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(1023), 10);
    assert_eq!(bucket_index(1024), 11);
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    // Every bucket's bounds bracket exactly the values indexed into it.
    for i in 0..BUCKETS {
        assert_eq!(bucket_index(bucket_lower(i)), i, "lower bound of {i}");
        assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound of {i}");
    }
    // Buckets tile the u64 range with no gaps.
    for i in 1..BUCKETS {
        assert_eq!(bucket_upper(i - 1) + 1, bucket_lower(i), "gap before {i}");
    }
}

/// The quantile estimate must land inside the bucket that contains the
/// true (sorted-reference) quantile — the strongest guarantee a
/// log2-bucketed sketch can make.
fn check_quantiles(samples: &[u64]) {
    let h = Histogram::default();
    for &s in samples {
        h.record(s);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, samples.len() as u64);
    assert_eq!(
        snap.sum,
        samples.iter().copied().fold(0u64, u64::wrapping_add)
    );
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for q in [0.5, 0.9, 0.99, 1.0] {
        let est = snap.quantile(q).expect("non-empty");
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let b = bucket_index(truth);
        assert!(
            (bucket_lower(b)..=bucket_upper(b)).contains(&est),
            "q={q}: estimate {est} outside bucket {b} of true quantile {truth}"
        );
    }
}

proptest! {
    #[test]
    fn quantile_estimates_track_sorted_reference(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200)
    ) {
        check_quantiles(&samples);
    }

    #[test]
    fn quantile_estimates_survive_extreme_values(
        samples in proptest::collection::vec(any::<u64>(), 1..64)
    ) {
        check_quantiles(&samples);
    }
}

#[test]
fn snapshot_coherent_under_concurrent_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = std::sync::Arc::new(Registry::new());
    let hits = reg.counter("hits");
    let level = reg.gauge("level");
    let lat = reg.histogram("lat_us");
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let (hits, level, lat) = (hits.clone(), level.clone(), lat.clone());
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    hits.inc();
                    level.add(if i % 2 == 0 { 1 } else { -1 });
                    lat.record((t as u64 + 1) * (i % 1024));
                }
            })
        })
        .collect();
    // Snapshots taken mid-run never exceed the final totals and stay
    // monotone: nothing recorded is lost, nothing is double-counted.
    let observer = {
        let reg = std::sync::Arc::clone(&reg);
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let snap = reg.snapshot();
                let c = snap.counter("hits").unwrap();
                assert!(c >= last, "counter went backwards: {last} -> {c}");
                assert!(c <= (THREADS as u64) * PER_THREAD);
                let h = snap.histogram("lat_us").unwrap();
                assert!(h.count <= (THREADS as u64) * PER_THREAD);
                assert!(h.buckets.iter().sum::<u64>() <= (THREADS as u64) * PER_THREAD);
                last = c;
            }
        })
    };
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    observer.join().unwrap();
    // After the writers join, the snapshot is exact.
    let snap = reg.snapshot();
    assert_eq!(snap.counter("hits"), Some(THREADS as u64 * PER_THREAD));
    assert_eq!(snap.gauge("level"), Some(0));
    let h = snap.histogram("lat_us").unwrap();
    assert_eq!(h.count, THREADS as u64 * PER_THREAD);
    assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
}

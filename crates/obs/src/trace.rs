//! Structured-event tracer: JSONL spans with monotonic timestamps,
//! trace/span ids, and `key=value` fields, written to a process-global
//! sink (`sct serve --trace-out FILE`).
//!
//! # Record shapes
//!
//! One JSON object per line, three event kinds:
//!
//! ```text
//! {"ts_us":N,"ev":"start","trace":"<16 hex>","span":S,"parent":P,"name":"serve.request",...fields}
//! {"ts_us":N,"ev":"event","trace":"<16 hex>","span":S,"name":"monitor.blame",...fields}
//! {"ts_us":N,"ev":"end","trace":"<16 hex>","span":S,"name":"serve.request","dur_us":D}
//! ```
//!
//! `ts_us` is microseconds since process start (monotonic clock, never
//! wall time). `parent` is omitted on root spans. Field keys must avoid
//! the reserved set (`ts_us`, `ev`, `trace`, `span`, `parent`, `name`,
//! `dur_us`); values are JSON-escaped and truncated at
//! [`MAX_FIELD_BYTES`].
//!
//! # Ids without a sink
//!
//! [`Span::root`] always allocates a fresh trace id — `sct serve` echoes
//! it in every response whether or not tracing is armed — but events are
//! rendered and written only while a sink is installed, so the disarmed
//! cost is one relaxed atomic load plus two id bumps per request.
//!
//! # Bounded buffering
//!
//! The sink buffers up to [`BUFFER_BYTES`] and flushes on overflow, on
//! [`flush`], and when the sink is replaced. A write error drops the
//! event and bumps [`dropped`]; tracing never panics the host.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json_escape;

/// Sink buffer capacity: events accumulate up to this many bytes before
/// a flush is forced.
pub const BUFFER_BYTES: usize = 32 * 1024;

/// Per-field value cap: longer values (a rendered witness graph, a huge
/// source form) are truncated with a `…` marker so one event cannot
/// balloon the sink.
pub const MAX_FIELD_BYTES: usize = 2048;

/// Fast armed gate, mirroring `sct_faults::ANY_ARMED`.
static ARMED: AtomicBool = AtomicBool::new(false);
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);
static SPAN_SEQ: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

struct Sink {
    out: Box<dyn Write + Send>,
    buf: String,
}

fn sink() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn ts_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// splitmix64 — the same mixer `sct-faults` uses; spreads the sequential
/// trace counter into visually distinct 16-hex ids.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Install a JSONL sink writing to `path` (created or truncated). Any
/// previous sink is flushed and replaced.
pub fn to_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    to_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Install an arbitrary sink (tests use in-memory writers). Any previous
/// sink is flushed and replaced.
pub fn to_writer(out: Box<dyn Write + Send>) {
    let mut guard = sink().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(old) = guard.as_mut() {
        let _ = drain(old);
    }
    *guard = Some(Sink {
        out,
        buf: String::with_capacity(BUFFER_BYTES),
    });
    ARMED.store(true, Ordering::Release);
}

/// Flush and remove the sink; subsequent events are discarded cheaply.
pub fn disarm() {
    let mut guard = sink().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(old) = guard.as_mut() {
        let _ = drain(old);
    }
    *guard = None;
    ARMED.store(false, Ordering::Release);
}

/// Whether a sink is installed.
pub fn enabled() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Events dropped because the sink's writer failed.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Flush buffered events through to the sink's writer.
pub fn flush() {
    let mut guard = sink().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(s) = guard.as_mut() {
        let _ = drain(s);
    }
}

fn drain(s: &mut Sink) -> io::Result<()> {
    if !s.buf.is_empty() {
        let r = s.out.write_all(s.buf.as_bytes());
        s.buf.clear();
        r?;
    }
    s.out.flush()
}

fn emit(line: String) {
    if !enabled() {
        return;
    }
    let mut guard = sink().lock().unwrap_or_else(|p| p.into_inner());
    let Some(s) = guard.as_mut() else { return };
    s.buf.push_str(&line);
    s.buf.push('\n');
    if s.buf.len() >= BUFFER_BYTES && drain(s).is_err() {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

fn push_fields(out: &mut String, fields: &[(&str, &str)]) {
    for (k, v) in fields {
        let v = if v.len() > MAX_FIELD_BYTES {
            let mut end = MAX_FIELD_BYTES;
            while !v.is_char_boundary(end) {
                end -= 1;
            }
            format!("{}…", &v[..end])
        } else {
            (*v).to_string()
        };
        out.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(&v)));
    }
}

/// A span: a named interval tied to a trace id. Emits a `start` record
/// on creation (when armed) and an `end` record with `dur_us` on drop.
#[derive(Debug)]
pub struct Span {
    trace_id: u64,
    id: u64,
    name: &'static str,
    start: Instant,
    armed: bool,
}

impl Span {
    /// Open a root span with a fresh trace id. Ids are allocated even
    /// when tracing is disarmed, so callers can echo them unconditionally.
    pub fn root(name: &'static str, fields: &[(&str, &str)]) -> Span {
        let trace_id = mix(TRACE_SEQ.fetch_add(1, Ordering::Relaxed).wrapping_add(1));
        Span::open(trace_id, None, name, fields)
    }

    /// Open a child span within this span's trace.
    pub fn child(&self, name: &'static str, fields: &[(&str, &str)]) -> Span {
        Span::open(self.trace_id, Some(self.id), name, fields)
    }

    fn open(
        trace_id: u64,
        parent: Option<u64>,
        name: &'static str,
        fields: &[(&str, &str)],
    ) -> Span {
        let id = SPAN_SEQ.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        let armed = enabled();
        if armed {
            let mut line = format!(
                "{{\"ts_us\":{},\"ev\":\"start\",\"trace\":\"{:016x}\",\"span\":{}",
                ts_us(),
                trace_id,
                id
            );
            if let Some(p) = parent {
                line.push_str(&format!(",\"parent\":{p}"));
            }
            line.push_str(&format!(",\"name\":\"{}\"", json_escape(name)));
            push_fields(&mut line, fields);
            line.push('}');
            emit(line);
        }
        Span {
            trace_id,
            id,
            name,
            start: Instant::now(),
            armed,
        }
    }

    /// The 16-hex trace id, as echoed in serve responses.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Emit a point event inside this span (a blame report, a shed
    /// decision). No-op while disarmed.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        if !enabled() {
            return;
        }
        let mut line = format!(
            "{{\"ts_us\":{},\"ev\":\"event\",\"trace\":\"{:016x}\",\"span\":{},\"name\":\"{}\"",
            ts_us(),
            self.trace_id,
            self.id,
            json_escape(name)
        );
        push_fields(&mut line, fields);
        line.push('}');
        emit(line);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // Close only spans that opened with a `start` record, so a sink
        // installed mid-span never sees an orphan `end`.
        if self.armed && enabled() {
            emit(format!(
                "{{\"ts_us\":{},\"ev\":\"end\",\"trace\":\"{:016x}\",\"span\":{},\"name\":\"{}\",\"dur_us\":{}}}",
                ts_us(),
                self.trace_id,
                self.id,
                json_escape(self.name),
                self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The sink is process-global state; serialize tests that install one.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn spans_nest_and_render_jsonl() {
        let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let cap = Capture::default();
        to_writer(Box::new(cap.clone()));
        {
            let root = Span::root("serve.request", &[("op", "plan")]);
            {
                let child = root.child("plan", &[]);
                child.event("monitor.blame", &[("function", "f\"g")]);
            }
        }
        disarm();
        let text = cap.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "{text}");
        assert!(lines[0].contains("\"ev\":\"start\"") && lines[0].contains("\"op\":\"plan\""));
        assert!(lines[1].contains("\"parent\":"), "{}", lines[1]);
        assert!(lines[2].contains("\"ev\":\"event\"") && lines[2].contains("f\\\"g"));
        assert!(lines[3].contains("\"ev\":\"end\"") && lines[3].contains("\"name\":\"plan\""));
        // child end comes before root end
        assert!(lines[4].contains("\"ev\":\"end\"") && lines[4].contains("serve.request"));
    }

    #[test]
    fn ids_flow_without_a_sink() {
        let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        disarm();
        let a = Span::root("x", &[]);
        let b = Span::root("x", &[]);
        assert_eq!(a.trace_hex().len(), 16);
        assert_ne!(a.trace_hex(), b.trace_hex());
    }

    #[test]
    fn long_fields_are_truncated() {
        let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let cap = Capture::default();
        to_writer(Box::new(cap.clone()));
        let big = "x".repeat(MAX_FIELD_BYTES * 2);
        {
            let s = Span::root("big", &[("blob", big.as_str())]);
            drop(s);
        }
        disarm();
        let text = cap.text();
        assert!(text.contains('…'), "truncation marker missing");
        assert!(text.len() < MAX_FIELD_BYTES * 2, "field was not truncated");
    }
}

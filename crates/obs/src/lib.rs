//! Zero-dependency observability for the sct stack: an atomic metric
//! registry plus a structured JSONL span tracer ([`trace`]).
//!
//! The registry holds three metric kinds, all updated lock-free:
//!
//! * [`Counter`] — a monotone `u64` (`requests.plan`, `cache.hits`, …).
//! * [`Gauge`] — a signed instantaneous level (`serve.inflight`).
//! * [`Histogram`] — 64 log2-spaced buckets over `u64` samples
//!   (microsecond latencies, sizes). Recording is two relaxed atomic
//!   adds; quantiles (p50/p90/p99) are estimated from the buckets at
//!   snapshot time.
//!
//! Handles are cheap `Arc` clones registered by name in a [`Registry`];
//! registration takes a lock once, after which every `inc`/`record` is
//! wait-free. [`Registry::snapshot`] reads the whole registry into a
//! plain [`Snapshot`] that renders as JSON or Prometheus-style text.
//!
//! # Instance vs. global
//!
//! [`Registry::new`] builds a private registry — each `sct serve`
//! server instance owns one so that concurrent in-process daemons (the
//! test suite runs many) never share counters. [`Registry::global`] is
//! the process-wide default used by the one-shot CLI paths
//! (`sct run --metrics`).
//!
//! # Coherence
//!
//! A snapshot is taken while writers run. Counters and gauges are single
//! atomics, so each value read is exact at some instant and monotone
//! between snapshots. A histogram's `count`/`sum`/buckets are separate
//! atomics: a sample landing mid-snapshot may appear in one and not the
//! other, but every completed `record` before the snapshot is fully
//! visible and nothing is ever lost — the in-crate coherence test pins
//! both properties.
//!
//! # Example
//!
//! ```
//! use sct_obs::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache.hits");
//! let lat = reg.histogram("cache.load_us");
//! hits.inc();
//! lat.record(90);
//! lat.record(1100);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("cache.hits"), Some(1));
//! let h = snap.histogram("cache.load_us").unwrap();
//! assert_eq!(h.count, 2);
//! assert!(h.quantile(0.5).unwrap() >= 64); // p50 in the 64..=127 bucket
//! ```

#![deny(missing_docs)]

pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of log2 buckets in a [`Histogram`]: bucket 0 holds zeros,
/// bucket `i` (1 ≤ i < 63) holds `2^(i-1) ..= 2^i - 1`, bucket 63 holds
/// everything from `2^62` up.
pub const BUCKETS: usize = 64;

/// Recover a possibly poisoned lock: metric state is plain data, safe to
/// read after a writer panicked.
fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A monotone event counter. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, inflight requests).
/// Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the level.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram of `u64` samples. Recording is lock-free;
/// quantiles are estimated from the bucket boundaries at snapshot time
/// ([`HistogramSnapshot::quantile`]). Cloning shares the buckets.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`,
/// clamped so the top bucket absorbs everything from `2^62` up.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record the whole microseconds elapsed since `start` — the idiom
    /// for latency histograms (`*_us` metrics).
    pub fn record_elapsed_us(&self, start: Instant) {
        self.record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
    }

    /// Read the buckets into a plain value.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]'s buckets.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket counts (see [`bucket_lower`]/[`bucket_upper`]).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`) by locating the
    /// bucket holding the rank-`⌈q·count⌉` sample and interpolating
    /// linearly inside it. The estimate always lies within the bucket
    /// that contains the true quantile (the property test pins this).
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_lower(i);
                let hi = bucket_upper(i);
                let frac = (rank - seen) as f64 / n as f64;
                // f64 rounding near u64::MAX can land one past the
                // bucket; saturate and clamp so the estimate always
                // stays inside [lo, hi].
                let off = ((hi - lo) as f64 * frac) as u64;
                return Some(lo.saturating_add(off).min(hi));
            }
            seen += n;
        }
        None // unreachable when count matches buckets; defensive
    }

    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        self.sum.checked_div(self.count)
    }
}

/// A named collection of metrics. Handles returned by
/// [`counter`](Registry::counter) / [`gauge`](Registry::gauge) /
/// [`histogram`](Registry::histogram) are get-or-create: asking twice
/// for the same name yields handles sharing one atomic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty, private registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry used by the one-shot CLI paths.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        lock_or_recover(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        lock_or_recover(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        lock_or_recover(&self.histograms)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Read every metric into a plain, name-sorted [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock_or_recover(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock_or_recover(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock_or_recover(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a whole [`Registry`], sorted by metric name.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels.
    pub gauges: Vec<(String, i64)>,
    /// Histogram bucket copies.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Render as a JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:
    /// {"count":..,"sum":..,"p50":..,"p90":..,"p99":..,
    /// "buckets":[[upper,count],..]}}}`. Only non-empty buckets are
    /// listed; quantile fields are omitted for empty histograms. All
    /// `u64` values are clamped to `i64::MAX` — most JSON consumers
    /// (including the in-tree parser) read integers as `i64`, and the
    /// top bucket's upper bound is `u64::MAX` by construction.
    pub fn to_json(&self) -> String {
        fn ji(v: u64) -> u64 {
            v.min(i64::MAX as u64)
        }
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), ji(*v)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{}",
                json_escape(k),
                ji(h.count),
                ji(h.sum)
            ));
            for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                if let Some(v) = h.quantile(q) {
                    out.push_str(&format!(",\"{label}\":{}", ji(v)));
                }
            }
            out.push_str(",\"buckets\":[");
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{},{}]", ji(bucket_upper(b)), ji(n)));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Render as Prometheus-style exposition text: one `# TYPE` line per
    /// metric, names sanitized to `[a-zA-Z0-9_]`, histograms exported
    /// summary-style as `_count`, `_sum`, and `{quantile="…"}` rows.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = prom_name(k);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let n = prom_name(k);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let n = prom_name(k);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                if let Some(v) = h.quantile(q) {
                    out.push_str(&format!("{n}{{quantile=\"{label}\"}} {v}\n"));
                }
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        let g = reg.gauge("lvl");
        g.inc();
        g.add(5);
        g.dec();
        assert_eq!(reg.gauge("lvl").get(), 5);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").add(2);
        reg.gauge("g").set(-1);
        reg.histogram("h").record(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        assert_eq!(snap.counters[1].0, "b");
        let json = snap.to_json();
        assert!(json.contains("\"a\":2"), "{json}");
        assert!(json.contains("\"g\":-1"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE a counter"), "{prom}");
        assert!(prom.contains("h_count 1"), "{prom}");
        assert!(prom.contains("h{quantile=\"0.5\"} "), "{prom}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default().snapshot();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
    }
}

//! The [`Datum`] tree: the external representation of λSCT programs.

use std::fmt;

/// A parsed S-expression.
///
/// Integer literals that fit in an `i64` are stored as [`Datum::Int`];
/// anything larger is kept as its decimal text in [`Datum::BigInt`] so this
/// crate stays independent of the bignum substrate (the interpreter converts
/// on demand).
///
/// # Examples
///
/// ```
/// use sct_sexpr::Datum;
///
/// let d = Datum::list(vec![Datum::sym("+"), Datum::Int(1), Datum::Int(2)]);
/// assert_eq!(d.to_string(), "(+ 1 2)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Datum {
    /// A fixnum integer literal such as `42` or `-7`.
    Int(i64),
    /// An integer literal too large for `i64`, kept as decimal text
    /// (sign included).
    BigInt(String),
    /// `#t` or `#f`.
    Bool(bool),
    /// A character literal such as `#\a`, `#\space`, or `#\newline`.
    Char(char),
    /// A string literal.
    Str(String),
    /// A symbol.
    Sym(String),
    /// A proper list `(d ...)`.
    List(Vec<Datum>),
    /// A dotted (improper) list `(d d ... . tail)`. The leading vector is
    /// non-empty and the tail is never itself a list (the parser normalizes).
    Improper(Vec<Datum>, Box<Datum>),
}

impl Datum {
    /// Builds a symbol datum.
    ///
    /// ```
    /// # use sct_sexpr::Datum;
    /// assert_eq!(Datum::sym("cons").to_string(), "cons");
    /// ```
    pub fn sym(s: impl Into<String>) -> Datum {
        Datum::Sym(s.into())
    }

    /// Builds a proper-list datum.
    ///
    /// ```
    /// # use sct_sexpr::Datum;
    /// assert_eq!(Datum::list(vec![]).to_string(), "()");
    /// ```
    pub fn list(items: Vec<Datum>) -> Datum {
        Datum::List(items)
    }

    /// The empty list `()`.
    pub fn nil() -> Datum {
        Datum::List(Vec::new())
    }

    /// Returns the symbol name if this datum is a symbol.
    ///
    /// ```
    /// # use sct_sexpr::Datum;
    /// assert_eq!(Datum::sym("x").as_sym(), Some("x"));
    /// assert_eq!(Datum::Int(3).as_sym(), None);
    /// ```
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Datum::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements if this datum is a proper list.
    pub fn as_list(&self) -> Option<&[Datum]> {
        match self {
            Datum::List(items) => Some(items),
            _ => None,
        }
    }

    /// True when this is the empty list.
    pub fn is_nil(&self) -> bool {
        matches!(self, Datum::List(items) if items.is_empty())
    }

    /// True when this proper list starts with the given symbol, e.g.
    /// `(define ...)` for `head_is("define")`.
    ///
    /// ```
    /// # use sct_sexpr::{parse_one};
    /// let d = parse_one("(define (f x) x)").unwrap();
    /// assert!(d.head_is("define"));
    /// assert!(!d.head_is("lambda"));
    /// ```
    pub fn head_is(&self, name: &str) -> bool {
        match self {
            Datum::List(items) => items.first().and_then(Datum::as_sym) == Some(name),
            _ => false,
        }
    }

    /// Total number of atoms and list nodes in the tree; a cheap size proxy
    /// used by tests and fuzzers.
    pub fn node_count(&self) -> usize {
        match self {
            Datum::List(items) => 1 + items.iter().map(Datum::node_count).sum::<usize>(),
            Datum::Improper(items, tail) => {
                1 + items.iter().map(Datum::node_count).sum::<usize>() + tail.node_count()
            }
            _ => 1,
        }
    }
}

/// Writes a string in `write` form: double-quoted with escapes.
fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Writes a character in `write` form (`#\a`, `#\space`, `#\newline`, ...).
fn write_char(f: &mut fmt::Formatter<'_>, c: char) -> fmt::Result {
    match c {
        ' ' => f.write_str("#\\space"),
        '\n' => f.write_str("#\\newline"),
        '\t' => f.write_str("#\\tab"),
        '\r' => f.write_str("#\\return"),
        '\0' => f.write_str("#\\nul"),
        c => write!(f, "#\\{c}"),
    }
}

impl fmt::Display for Datum {
    /// Prints in `write` form, which round-trips through the parser.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int(n) => write!(f, "{n}"),
            Datum::BigInt(s) => f.write_str(s),
            Datum::Bool(true) => f.write_str("#t"),
            Datum::Bool(false) => f.write_str("#f"),
            Datum::Char(c) => write_char(f, *c),
            Datum::Str(s) => write_string(f, s),
            Datum::Sym(s) => f.write_str(s),
            Datum::List(items) => {
                f.write_str("(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{d}")?;
                }
                f.write_str(")")
            }
            Datum::Improper(items, tail) => {
                f.write_str("(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, " . {tail})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_atoms() {
        assert_eq!(Datum::Int(-3).to_string(), "-3");
        assert_eq!(Datum::Bool(true).to_string(), "#t");
        assert_eq!(Datum::Bool(false).to_string(), "#f");
        assert_eq!(Datum::Char('x').to_string(), "#\\x");
        assert_eq!(Datum::Char(' ').to_string(), "#\\space");
        assert_eq!(Datum::Char('\n').to_string(), "#\\newline");
        assert_eq!(Datum::Str("a\"b\\c".into()).to_string(), "\"a\\\"b\\\\c\"");
        assert_eq!(Datum::sym("hello").to_string(), "hello");
        assert_eq!(
            Datum::BigInt("123456789012345678901234567890".into()).to_string(),
            "123456789012345678901234567890"
        );
    }

    #[test]
    fn display_lists() {
        let d = Datum::list(vec![
            Datum::sym("cons"),
            Datum::Int(1),
            Datum::list(vec![Datum::sym("quote"), Datum::nil()]),
        ]);
        assert_eq!(d.to_string(), "(cons 1 (quote ()))");
        let imp = Datum::Improper(vec![Datum::Int(1), Datum::Int(2)], Box::new(Datum::Int(3)));
        assert_eq!(imp.to_string(), "(1 2 . 3)");
    }

    #[test]
    fn helpers() {
        assert!(Datum::nil().is_nil());
        assert!(!Datum::Int(0).is_nil());
        assert_eq!(Datum::list(vec![Datum::Int(1)]).as_list().unwrap().len(), 1);
        assert_eq!(Datum::Int(1).as_list(), None);
        let d = Datum::list(vec![Datum::sym("a"), Datum::sym("b")]);
        assert_eq!(d.node_count(), 3);
    }
}

//! Recursive-descent parser from tokens to [`Datum`] trees.

use crate::lexer::{LexError, Lexer, Token, TokenKind};
use crate::{Datum, Pos};
use std::fmt;

/// Error produced when source text is not a well-formed S-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Lowercase description of the problem.
    pub message: String,
    /// Where the problem was found.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

/// A pull parser producing one [`Datum`] at a time.
///
/// # Examples
///
/// ```
/// use sct_sexpr::Parser;
///
/// # fn main() -> Result<(), sct_sexpr::ParseError> {
/// let mut p = Parser::new("1 (2 3)");
/// assert_eq!(p.next_datum()?.unwrap().to_string(), "1");
/// assert_eq!(p.next_datum()?.unwrap().to_string(), "(2 3)");
/// assert!(p.next_datum()?.is_none());
/// # Ok(())
/// # }
/// ```
pub struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Option<Token>,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `text`.
    pub fn new(text: &'a str) -> Parser<'a> {
        Parser {
            lexer: Lexer::new(text),
            lookahead: None,
        }
    }

    fn next_tok(&mut self) -> Result<Option<Token>, ParseError> {
        if let Some(t) = self.lookahead.take() {
            return Ok(Some(t));
        }
        Ok(self.lexer.next_token()?)
    }

    fn put_back(&mut self, t: Token) {
        debug_assert!(self.lookahead.is_none());
        self.lookahead = Some(t);
    }

    /// Parses the next datum, or returns `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input: unbalanced parentheses,
    /// mismatched bracket kinds, misplaced dots, or lexical errors.
    pub fn next_datum(&mut self) -> Result<Option<Datum>, ParseError> {
        let Some(tok) = self.next_tok()? else {
            return Ok(None);
        };
        self.datum_from(tok).map(Some)
    }

    fn expect_datum(&mut self, why: &str, pos: Pos) -> Result<Datum, ParseError> {
        match self.next_datum()? {
            Some(d) => Ok(d),
            None => Err(ParseError {
                message: format!("unexpected end of input: {why}"),
                pos,
            }),
        }
    }

    fn datum_from(&mut self, tok: Token) -> Result<Datum, ParseError> {
        match tok.kind {
            TokenKind::Int(n) => Ok(Datum::Int(n)),
            TokenKind::BigInt(s) => Ok(Datum::BigInt(s)),
            TokenKind::Bool(b) => Ok(Datum::Bool(b)),
            TokenKind::Char(c) => Ok(Datum::Char(c)),
            TokenKind::Str(s) => Ok(Datum::Str(s)),
            TokenKind::Sym(s) => Ok(Datum::Sym(s)),
            TokenKind::Quote => self.sugar("quote", tok.pos),
            TokenKind::Quasiquote => self.sugar("quasiquote", tok.pos),
            TokenKind::Unquote => self.sugar("unquote", tok.pos),
            TokenKind::UnquoteSplicing => self.sugar("unquote-splicing", tok.pos),
            TokenKind::DatumComment => {
                // Skip the next datum, then parse the one after it.
                let _ = self.expect_datum("datum expected after #;", tok.pos)?;
                self.expect_datum("datum expected after commented datum", tok.pos)
            }
            TokenKind::Open(open) => self.list(open, tok.pos),
            TokenKind::Close(c) => Err(ParseError {
                message: format!("unexpected {c}"),
                pos: tok.pos,
            }),
            TokenKind::Dot => Err(ParseError {
                message: "unexpected .".into(),
                pos: tok.pos,
            }),
        }
    }

    fn sugar(&mut self, name: &str, pos: Pos) -> Result<Datum, ParseError> {
        let inner = self.expect_datum(&format!("datum expected after {name}"), pos)?;
        Ok(Datum::List(vec![Datum::sym(name), inner]))
    }

    fn list(&mut self, open: char, open_pos: Pos) -> Result<Datum, ParseError> {
        let want_close = if open == '(' { ')' } else { ']' };
        let mut items = Vec::new();
        loop {
            let Some(tok) = self.next_tok()? else {
                return Err(ParseError {
                    message: format!("unclosed {open}"),
                    pos: open_pos,
                });
            };
            match tok.kind {
                TokenKind::Close(c) => {
                    if c != want_close {
                        return Err(ParseError {
                            message: format!("mismatched {c}: expected {want_close}"),
                            pos: tok.pos,
                        });
                    }
                    return Ok(Datum::List(items));
                }
                TokenKind::Dot => {
                    if items.is_empty() {
                        return Err(ParseError {
                            message: "dot with no preceding datum".into(),
                            pos: tok.pos,
                        });
                    }
                    let tail = self.expect_datum("datum expected after .", tok.pos)?;
                    let Some(close) = self.next_tok()? else {
                        return Err(ParseError {
                            message: format!("unclosed {open}"),
                            pos: open_pos,
                        });
                    };
                    match close.kind {
                        TokenKind::Close(c) if c == want_close => {}
                        _ => {
                            return Err(ParseError {
                                message: "expected close paren after dotted tail".into(),
                                pos: close.pos,
                            })
                        }
                    }
                    // Normalize: a dotted tail that is itself a list folds in.
                    return Ok(match tail {
                        Datum::List(tail_items) => {
                            items.extend(tail_items);
                            Datum::List(items)
                        }
                        Datum::Improper(mid, end) => {
                            items.extend(mid);
                            Datum::Improper(items, end)
                        }
                        atom => Datum::Improper(items, Box::new(atom)),
                    });
                }
                _ => {
                    self.put_back(tok);
                    let d = self.expect_datum("datum expected in list", open_pos)?;
                    items.push(d);
                }
            }
        }
    }
}

/// Parses exactly one datum; trailing input is an error.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, empty input, or trailing junk.
///
/// ```
/// use sct_sexpr::parse_one;
/// assert!(parse_one("(a b)").is_ok());
/// assert!(parse_one("(a b) extra").is_err());
/// assert!(parse_one("").is_err());
/// ```
pub fn parse_one(text: &str) -> Result<Datum, ParseError> {
    let mut p = Parser::new(text);
    let d = p.next_datum()?.ok_or(ParseError {
        message: "empty input".into(),
        pos: Pos::start(),
    })?;
    if let Some(extra) = p.next_datum()? {
        return Err(ParseError {
            message: format!("trailing datum {extra}"),
            pos: Pos::start(),
        });
    }
    Ok(d)
}

/// Parses all data in the text, in order.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input anywhere in the text.
///
/// ```
/// use sct_sexpr::parse_all;
/// let prog = parse_all("(define (f x) x) (f 1)").unwrap();
/// assert_eq!(prog.len(), 2);
/// ```
pub fn parse_all(text: &str) -> Result<Vec<Datum>, ParseError> {
    let mut p = Parser::new(text);
    let mut out = Vec::new();
    while let Some(d) = p.next_datum()? {
        out.push(d);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms() {
        assert_eq!(parse_one("42").unwrap(), Datum::Int(42));
        assert_eq!(parse_one("#t").unwrap(), Datum::Bool(true));
        assert_eq!(parse_one("x").unwrap(), Datum::sym("x"));
    }

    #[test]
    fn nested_lists() {
        let d = parse_one("(a (b c) [d])").unwrap();
        assert_eq!(d.to_string(), "(a (b c) (d))");
    }

    #[test]
    fn quote_sugar() {
        assert_eq!(parse_one("'x").unwrap().to_string(), "(quote x)");
        assert_eq!(
            parse_one("`(a ,b ,@c)").unwrap().to_string(),
            "(quasiquote (a (unquote b) (unquote-splicing c)))"
        );
    }

    #[test]
    fn dotted() {
        assert_eq!(parse_one("(a . b)").unwrap().to_string(), "(a . b)");
        assert_eq!(parse_one("(a b . c)").unwrap().to_string(), "(a b . c)");
        // Dotted list tail normalizes to a proper list.
        assert_eq!(parse_one("(a . (b c))").unwrap().to_string(), "(a b c)");
        assert_eq!(parse_one("(a . (b . c))").unwrap().to_string(), "(a b . c)");
    }

    #[test]
    fn datum_comment() {
        assert_eq!(parse_one("#;(skip me) 5").unwrap(), Datum::Int(5));
        let all = parse_all("1 #;2 3").unwrap();
        assert_eq!(all, vec![Datum::Int(1), Datum::Int(3)]);
    }

    #[test]
    fn bracket_matching() {
        assert!(parse_one("(a]").is_err());
        assert!(parse_one("[a)").is_err());
        assert!(parse_one("(a").is_err());
        assert!(parse_one(")").is_err());
        assert!(parse_one("(. a)").is_err());
        assert!(parse_one("(a . b c)").is_err());
    }

    #[test]
    fn parse_all_many() {
        let prog = parse_all("; a program\n(define x 1)\n(+ x 2)").unwrap();
        assert_eq!(prog.len(), 2);
        assert!(prog[0].head_is("define"));
    }

    #[test]
    fn roundtrip_samples() {
        for src in [
            "(define (ack m n) (cond [(= 0 m) (+ 1 n)] [(= 0 n) (ack (- m 1) 1)] [else (ack (- m 1) (ack m (- n 1)))]))",
            "(quote (1 2 (3 . 4) #\\a \"str\" #t))",
            "((lambda (x) (x x)) (lambda (y) (y y)))",
        ] {
            let d = parse_one(src).unwrap();
            let printed = d.to_string();
            let d2 = parse_one(&printed).unwrap();
            assert_eq!(d, d2, "roundtrip failed for {src}");
        }
    }
}

//! Tokenizer for the Scheme-subset lexical syntax.

use crate::Pos;

/// A lexical token paired with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Position of the token's first character.
    pub pos: Pos,
}

/// The kinds of token the reader understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `(` or `[`.
    Open(char),
    /// `)` or `]`.
    Close(char),
    /// `'`
    Quote,
    /// `` ` ``
    Quasiquote,
    /// `,`
    Unquote,
    /// `,@`
    UnquoteSplicing,
    /// `.` used in dotted pairs.
    Dot,
    /// `#;` — comments out the following datum.
    DatumComment,
    /// An integer that fits in `i64`.
    Int(i64),
    /// An integer literal wider than `i64`, kept as text.
    BigInt(String),
    /// `#t` / `#f`.
    Bool(bool),
    /// A character literal.
    Char(char),
    /// A string literal (already unescaped).
    Str(String),
    /// A symbol.
    Sym(String),
}

/// Errors produced while tokenizing; converted into
/// [`ParseError`](crate::ParseError) by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description, lowercase per convention.
    pub message: String,
    /// Where the problem was found.
    pub pos: Pos,
}

/// A streaming tokenizer over source text.
///
/// # Examples
///
/// ```
/// use sct_sexpr::{Lexer, TokenKind};
///
/// let toks: Vec<_> = Lexer::new("(+ 1 2)").collect::<Result<_, _>>().unwrap();
/// assert_eq!(toks.len(), 5);
/// assert_eq!(toks[1].kind, TokenKind::Sym("+".into()));
/// ```
pub struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    at: usize,
    pos: Pos,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `text`.
    pub fn new(text: &'a str) -> Lexer<'a> {
        Lexer {
            src: text.as_bytes(),
            text,
            at: 0,
            pos: Pos::start(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.at + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.at += 1;
        if b == b'\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(b)
    }

    fn err(&self, pos: Pos, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            pos,
        }
    }

    /// Skips whitespace, `;` line comments and `#| ... |#` block comments
    /// (which nest, as in Racket).
    fn skip_atmosphere(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if (b as char).is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'#') if self.peek2() == Some(b'|') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'|'), Some(b'#')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(b'#'), Some(b'|')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(self.err(start, "unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn is_delimiter(b: u8) -> bool {
        (b as char).is_ascii_whitespace() || matches!(b, b'(' | b')' | b'[' | b']' | b'"' | b';')
    }

    fn read_string(&mut self, start: Pos) -> Result<TokenKind, LexError> {
        // Opening quote already consumed.
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(start, "unterminated string literal")),
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'0') => out.push('\0'),
                    Some(other) => {
                        return Err(self.err(
                            self.pos,
                            format!("unknown string escape \\{}", other as char),
                        ))
                    }
                    None => return Err(self.err(start, "unterminated string literal")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-decode the multibyte char from the text.
                    let back = self.at - 1;
                    let ch = self.text[back..].chars().next().unwrap();
                    for _ in 1..ch.len_utf8() {
                        self.bump();
                    }
                    out.push(ch);
                }
            }
        }
    }

    fn read_hash(&mut self, start: Pos) -> Result<TokenKind, LexError> {
        // '#' already consumed.
        match self.bump() {
            Some(b't') => Ok(TokenKind::Bool(true)),
            Some(b'f') => Ok(TokenKind::Bool(false)),
            Some(b';') => Ok(TokenKind::DatumComment),
            Some(b'\\') => {
                // Character literal: read one char, then any trailing name letters.
                let first = match self.peek() {
                    None => return Err(self.err(start, "unterminated character literal")),
                    Some(b) if b < 0x80 => {
                        self.bump();
                        b as char
                    }
                    Some(_) => {
                        let ch = self.text[self.at..].chars().next().unwrap();
                        for _ in 0..ch.len_utf8() {
                            self.bump();
                        }
                        ch
                    }
                };
                let mut name = String::new();
                name.push(first);
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'-' {
                        self.bump();
                        name.push(b as char);
                    } else {
                        break;
                    }
                }
                if name.chars().count() == 1 {
                    Ok(TokenKind::Char(first))
                } else {
                    match name.as_str() {
                        "space" => Ok(TokenKind::Char(' ')),
                        "newline" | "linefeed" => Ok(TokenKind::Char('\n')),
                        "tab" => Ok(TokenKind::Char('\t')),
                        "return" => Ok(TokenKind::Char('\r')),
                        "nul" | "null" => Ok(TokenKind::Char('\0')),
                        other => Err(self.err(start, format!("unknown character name #\\{other}"))),
                    }
                }
            }
            Some(other) => Err(self.err(start, format!("unknown # syntax #{}", other as char))),
            None => Err(self.err(start, "unexpected end of input after #")),
        }
    }

    fn read_atom(&mut self, start: Pos) -> TokenKind {
        let begin = self.at;
        while let Some(b) = self.peek() {
            if Self::is_delimiter(b) {
                break;
            }
            self.bump();
        }
        let text = &self.text[begin..self.at];
        classify_atom(text, start)
    }

    /// Produces the next token, or `None` at end of input.
    #[allow(clippy::should_implement_trait)]
    pub fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_atmosphere()?;
        let pos = self.pos;
        let Some(b) = self.peek() else {
            return Ok(None);
        };
        let kind = match b {
            b'(' | b'[' => {
                self.bump();
                TokenKind::Open(b as char)
            }
            b')' | b']' => {
                self.bump();
                TokenKind::Close(b as char)
            }
            b'\'' => {
                self.bump();
                TokenKind::Quote
            }
            b'`' => {
                self.bump();
                TokenKind::Quasiquote
            }
            b',' => {
                self.bump();
                if self.peek() == Some(b'@') {
                    self.bump();
                    TokenKind::UnquoteSplicing
                } else {
                    TokenKind::Unquote
                }
            }
            b'"' => {
                self.bump();
                self.read_string(pos)?
            }
            b'#' => {
                self.bump();
                self.read_hash(pos)?
            }
            _ => self.read_atom(pos),
        };
        Ok(Some(Token { kind, pos }))
    }
}

/// Decides whether a bare atom is a number, a dot, or a symbol.
fn classify_atom(text: &str, _pos: Pos) -> TokenKind {
    if text == "." {
        return TokenKind::Dot;
    }
    let body = text.strip_prefix(['+', '-']).unwrap_or(text);
    if !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit()) {
        match text.parse::<i64>() {
            Ok(n) => TokenKind::Int(n),
            Err(_) => TokenKind::BigInt(text.to_string()),
        }
    } else {
        TokenKind::Sym(text.to_string())
    }
}

impl<'a> Iterator for Lexer<'a> {
    type Item = Result<Token, LexError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_token().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn numbers_and_symbols() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42)]);
        assert_eq!(kinds("-7"), vec![TokenKind::Int(-7)]);
        assert_eq!(kinds("+3"), vec![TokenKind::Int(3)]);
        assert_eq!(kinds("+"), vec![TokenKind::Sym("+".into())]);
        assert_eq!(kinds("-"), vec![TokenKind::Sym("-".into())]);
        assert_eq!(kinds("a->b"), vec![TokenKind::Sym("a->b".into())]);
        assert_eq!(
            kinds("list->vector"),
            vec![TokenKind::Sym("list->vector".into())]
        );
        assert_eq!(
            kinds("99999999999999999999999"),
            vec![TokenKind::BigInt("99999999999999999999999".into())]
        );
    }

    #[test]
    fn punctuation() {
        assert_eq!(
            kinds("'(a . b)"),
            vec![
                TokenKind::Quote,
                TokenKind::Open('('),
                TokenKind::Sym("a".into()),
                TokenKind::Dot,
                TokenKind::Sym("b".into()),
                TokenKind::Close(')'),
            ]
        );
        assert_eq!(
            kinds("`(,x ,@ys)"),
            vec![
                TokenKind::Quasiquote,
                TokenKind::Open('('),
                TokenKind::Unquote,
                TokenKind::Sym("x".into()),
                TokenKind::UnquoteSplicing,
                TokenKind::Sym("ys".into()),
                TokenKind::Close(')'),
            ]
        );
    }

    #[test]
    fn strings_chars_bools() {
        assert_eq!(
            kinds("#t #f"),
            vec![TokenKind::Bool(true), TokenKind::Bool(false)]
        );
        assert_eq!(kinds("#\\a"), vec![TokenKind::Char('a')]);
        assert_eq!(kinds("#\\space"), vec![TokenKind::Char(' ')]);
        assert_eq!(kinds("#\\newline"), vec![TokenKind::Char('\n')]);
        assert_eq!(kinds("#\\("), vec![TokenKind::Char('(')]);
        assert_eq!(kinds(r#""a\nb""#), vec![TokenKind::Str("a\nb".into())]);
        assert_eq!(
            kinds(r#""say \"hi\"""#),
            vec![TokenKind::Str("say \"hi\"".into())]
        );
    }

    #[test]
    fn comments() {
        assert_eq!(kinds("; nothing\n1"), vec![TokenKind::Int(1)]);
        assert_eq!(kinds("#| block #| nested |# |# 2"), vec![TokenKind::Int(2)]);
        assert_eq!(kinds("#;"), vec![TokenKind::DatumComment]);
    }

    #[test]
    fn errors() {
        assert!(Lexer::new("\"unterminated")
            .collect::<Result<Vec<_>, _>>()
            .is_err());
        assert!(Lexer::new("#| open")
            .collect::<Result<Vec<_>, _>>()
            .is_err());
        assert!(Lexer::new("#q").collect::<Result<Vec<_>, _>>().is_err());
        assert!(Lexer::new("#\\badname")
            .collect::<Result<Vec<_>, _>>()
            .is_err());
    }

    #[test]
    fn positions_track_lines() {
        let toks: Vec<_> = Lexer::new("a\n  b").collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("\"héllo\""), vec![TokenKind::Str("héllo".into())]);
    }
}

//! S-expression reader and writer for the λSCT language.
//!
//! The PLDI'19 artifact represents programs as Racket syntax; this crate is
//! the corresponding substrate: a small, dependency-free reader producing
//! [`Datum`] trees from textual S-expressions, and a writer that prints them
//! back in `write` form. It supports the subset of Scheme lexical syntax that
//! the benchmark corpus needs: proper and dotted lists, fixnum and bignum
//! integer literals, booleans, characters, strings, symbols, the quotation
//! sugar (`'`, `` ` ``, `,`, `,@`), and line / block / datum comments.
//!
//! # Examples
//!
//! ```
//! use sct_sexpr::{parse_one, Datum};
//!
//! # fn main() -> Result<(), sct_sexpr::ParseError> {
//! let d = parse_one("(ack (- m 1) 1)")?;
//! assert_eq!(d.to_string(), "(ack (- m 1) 1)");
//! assert!(matches!(d, Datum::List(_)));
//! # Ok(())
//! # }
//! ```

mod datum;
mod lexer;
mod parser;

pub use datum::Datum;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_all, parse_one, ParseError, Parser};

/// A source position (1-based line and column) used in error reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// The position of the first character of a source text.
    pub fn start() -> Pos {
        Pos { line: 1, col: 1 }
    }
}

impl Default for Pos {
    fn default() -> Self {
        Pos::start()
    }
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

//! Property tests: printing a datum and re-parsing it yields the same tree.

use proptest::prelude::*;
use sct_sexpr::{parse_one, Datum};

/// Strategy generating arbitrary valid symbols (no delimiters, not numeric).
fn symbol_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z!$%&*/:<=>?^_~+-][a-zA-Z0-9!$%&*/:<=>?^_~+-]{0,8}")
        .unwrap()
        .prop_filter("not a number or dot", |s| {
            s != "." && {
                let body = s.strip_prefix(['+', '-']).unwrap_or(s);
                body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) || {
                    // "+" and "-" alone are symbols; "+1" is a number.
                    s == "+" || s == "-"
                }
            }
        })
}

fn datum_strategy() -> impl Strategy<Value = Datum> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Datum::Int),
        any::<bool>().prop_map(Datum::Bool),
        proptest::char::range('!', '~').prop_map(Datum::Char),
        Just(Datum::Char(' ')),
        Just(Datum::Char('\n')),
        "[ -~]{0,12}".prop_map(Datum::Str),
        symbol_strategy().prop_map(Datum::Sym),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Datum::List),
            (proptest::collection::vec(inner.clone(), 1..4), inner).prop_map(|(items, tail)| {
                match tail {
                    // Keep the improper invariant: the tail is never a list.
                    Datum::List(tl) => {
                        let mut items = items;
                        items.extend(tl);
                        Datum::List(items)
                    }
                    Datum::Improper(mid, end) => {
                        let mut items = items;
                        items.extend(mid);
                        Datum::Improper(items, end)
                    }
                    atom => Datum::Improper(items, Box::new(atom)),
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn print_parse_roundtrip(d in datum_strategy()) {
        let printed = d.to_string();
        let reparsed = parse_one(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(d, reparsed);
    }

    #[test]
    fn node_count_positive(d in datum_strategy()) {
        prop_assert!(d.node_count() >= 1);
    }
}

//! `sct` — command-line front end for the termination-contract system.
//!
//! ```text
//! sct run <file.sct>                       # standard semantics (λCSCT)
//! sct monitor <file.sct> [options]         # fully monitored (λSCT)
//! sct verify <file.sct> <function> [sig]   # static verification (§4)
//! sct trace <file.sct>                     # monitored run + Figure-1 trace
//! ```
//!
//! Options for `monitor`/`trace`:
//!   --strategy imperative|cm      table strategy (default imperative)
//!   --order default|reverse-int|extended
//!   --backoff N                   exponential backoff factor
//!   --loop-entries                monitor loop entries only
//!   --fuel N                      step budget
//!
//! `verify` signatures: a comma-separated parameter domain list and an
//! optional `-> result` domain, e.g. `nat,nat -> nat` (domains: nat, pos,
//! int, list, any; default any).

use sct_contracts::interp::{ExtendedOrder, OrderHandle, ReverseIntOrder};
use sct_contracts::{
    BackoffPolicy, EvalError, Machine, MachineConfig, SemanticsMode, SymDomain, TableStrategy,
    VerifyConfig,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sct run <file>\n  sct monitor <file> [--strategy imperative|cm] \
         [--order default|reverse-int|extended] [--backoff N] [--loop-entries] [--fuel N]\n  \
         sct verify <file> <function> [domains [-> result]]\n  sct trace <file>"
    );
    ExitCode::from(2)
}

struct Options {
    strategy: TableStrategy,
    order: OrderHandle,
    backoff: BackoffPolicy,
    loop_entries: bool,
    fuel: Option<u64>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            strategy: TableStrategy::Imperative,
            order: OrderHandle::default_order(),
            backoff: BackoffPolicy::EveryCall,
            loop_entries: false,
            fuel: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--strategy" => {
                    o.strategy = match it.next().map(String::as_str) {
                        Some("imperative") => TableStrategy::Imperative,
                        Some("cm") | Some("continuation-mark") => TableStrategy::ContinuationMark,
                        other => return Err(format!("bad --strategy {other:?}")),
                    }
                }
                "--order" => {
                    o.order = match it.next().map(String::as_str) {
                        Some("default") => OrderHandle::default_order(),
                        Some("reverse-int") => OrderHandle::new(ReverseIntOrder),
                        Some("extended") => OrderHandle::new(ExtendedOrder),
                        other => return Err(format!("bad --order {other:?}")),
                    }
                }
                "--backoff" => {
                    let n: u32 = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad --backoff value")?;
                    o.backoff = BackoffPolicy::Exponential { factor: n };
                }
                "--loop-entries" => o.loop_entries = true,
                "--fuel" => {
                    o.fuel = Some(
                        it.next()
                            .and_then(|s| s.parse().ok())
                            .ok_or("bad --fuel value")?,
                    )
                }
                other => return Err(format!("unknown option {other}")),
            }
        }
        Ok(o)
    }
}

fn parse_domain(s: &str) -> Result<SymDomain, String> {
    match s.trim() {
        "nat" => Ok(SymDomain::Nat),
        "pos" => Ok(SymDomain::Pos),
        "int" => Ok(SymDomain::Int),
        "list" => Ok(SymDomain::List),
        "any" | "" => Ok(SymDomain::Any),
        other => Err(format!("unknown domain {other} (nat|pos|int|list|any)")),
    }
}

fn report(result: Result<sct_contracts::Value, EvalError>, output: &str) -> ExitCode {
    print!("{output}");
    match result {
        Ok(v) => {
            println!("{}", v.to_write_string());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let Some(file) = rest.first() else {
        return usage();
    };
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match sct_lang::compile_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "run" => {
            let mut m = Machine::new(&program, MachineConfig::standard());
            let r = m.run();
            let out = m.output.clone();
            report(r, &out)
        }
        "monitor" | "trace" => {
            let opts = match Options::parse(&rest[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let mut config = MachineConfig {
                mode: SemanticsMode::Monitored,
                order: opts.order,
                fuel: opts.fuel,
                trace: cmd == "trace",
                ..MachineConfig::monitored(opts.strategy)
            };
            config.monitor.backoff = opts.backoff;
            config.monitor.loop_entries_only = opts.loop_entries;
            let mut m = Machine::new(&program, config);
            let r = m.run();
            if cmd == "trace" {
                for e in &m.trace_events {
                    let graph = e.graph.as_deref().unwrap_or("[table seeded]");
                    println!("({} {})    {}", e.function, e.args.join(" "), graph);
                }
            }
            eprintln!(
                "; applications={} monitored={} checks={} max-kont={}",
                m.stats.applications,
                m.stats.monitored_calls,
                m.stats.checks,
                m.stats.max_kont_depth
            );
            let out = m.output.clone();
            report(r, &out)
        }
        "verify" => {
            let Some(function) = rest.get(1) else {
                return usage();
            };
            let sig = rest.get(2).map(String::as_str).unwrap_or("");
            let (doms_text, result_text) = match sig.split_once("->") {
                Some((d, r)) => (d.trim(), r.trim()),
                None => (sig.trim(), "any"),
            };
            let domains: Vec<SymDomain> = if doms_text.is_empty() {
                // No signature: a nullary function.
                Vec::new()
            } else {
                match doms_text.split(',').map(parse_domain).collect() {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("{e}");
                        return usage();
                    }
                }
            };
            let result = match parse_domain(result_text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let verdict = sct_contracts::symbolic::verify_function(
                &program,
                function,
                &domains,
                result,
                &VerifyConfig::default(),
            );
            println!("{verdict}");
            if verdict.is_verified() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

//! `sct` — command-line front end for the termination-contract system.
//!
//! ```text
//! sct run <file.sct>                       # standard semantics (λCSCT)
//! sct monitor <file.sct> [options]         # fully monitored (λSCT)
//! sct hybrid <file.sct> [--plan] [options] # static pre-pass + residual monitor
//! sct verify <file.sct> <function> [sig]   # static verification (§4)
//! sct trace <file.sct>                     # monitored run + Figure-1 trace
//! ```
//!
//! Options for `monitor`/`trace`/`hybrid`:
//!   --strategy imperative|cm      table strategy (default imperative)
//!   --order default|reverse-int|extended
//!   --backoff N                   exponential backoff factor
//!   --loop-entries                monitor loop entries only
//!   --fuel N                      step budget
//!
//! `hybrid` first plans the program: every `define` is run through the §4
//! verifier (with a fuel budget); proved functions skip the monitor at run
//! time, refuted ones are reported — with blame — before running, and the
//! rest stay monitored. `--plan` prints the decisions as `sct-plan/1` JSON
//! (schema in `sct_core::plan::EnforcementPlan::to_json`) instead of
//! running.
//!
//! `verify` signatures: a comma-separated parameter domain list and an
//! optional `-> result` domain, e.g. `nat,nat -> nat` (domains: nat, pos,
//! int, list, any; default any).

use sct_contracts::interp::{ExtendedOrder, OrderHandle, ReverseIntOrder};
use sct_contracts::{
    plan_program, refutation_error, BackoffPolicy, EvalError, Machine, MachineConfig, PlanConfig,
    SemanticsMode, SymDomain, TableStrategy, VerifyConfig,
};
use std::process::ExitCode;
use std::rc::Rc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sct run <file>\n  sct monitor <file> [--strategy imperative|cm] \
         [--order default|reverse-int|extended] [--backoff N] [--loop-entries] [--fuel N]\n  \
         sct hybrid <file> [--plan] [monitor options]\n  \
         sct verify <file> <function> [domains [-> result]]\n  sct trace <file>"
    );
    ExitCode::from(2)
}

struct Options {
    strategy: TableStrategy,
    order: OrderHandle,
    backoff: BackoffPolicy,
    loop_entries: bool,
    fuel: Option<u64>,
    plan_only: bool,
    custom_order: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            strategy: TableStrategy::Imperative,
            order: OrderHandle::default_order(),
            backoff: BackoffPolicy::EveryCall,
            loop_entries: false,
            fuel: None,
            plan_only: false,
            custom_order: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--strategy" => {
                    o.strategy = match it.next().map(String::as_str) {
                        Some("imperative") => TableStrategy::Imperative,
                        Some("cm") | Some("continuation-mark") => TableStrategy::ContinuationMark,
                        other => return Err(format!("bad --strategy {other:?}")),
                    }
                }
                "--order" => {
                    o.order = match it.next().map(String::as_str) {
                        Some("default") => OrderHandle::default_order(),
                        Some("reverse-int") => {
                            o.custom_order = true;
                            OrderHandle::new(ReverseIntOrder)
                        }
                        Some("extended") => {
                            o.custom_order = true;
                            OrderHandle::new(ExtendedOrder)
                        }
                        other => return Err(format!("bad --order {other:?}")),
                    }
                }
                "--backoff" => {
                    let n: u32 = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad --backoff value")?;
                    o.backoff = BackoffPolicy::Exponential { factor: n };
                }
                "--loop-entries" => o.loop_entries = true,
                "--plan" => o.plan_only = true,
                "--fuel" => {
                    o.fuel = Some(
                        it.next()
                            .and_then(|s| s.parse().ok())
                            .ok_or("bad --fuel value")?,
                    )
                }
                other => return Err(format!("unknown option {other}")),
            }
        }
        Ok(o)
    }
}

fn parse_domain(s: &str) -> Result<SymDomain, String> {
    match s.trim() {
        "nat" => Ok(SymDomain::Nat),
        "pos" => Ok(SymDomain::Pos),
        "int" => Ok(SymDomain::Int),
        "list" => Ok(SymDomain::List),
        "any" | "" => Ok(SymDomain::Any),
        other => Err(format!("unknown domain {other} (nat|pos|int|list|any)")),
    }
}

fn report(result: Result<sct_contracts::Value, EvalError>, output: &str) -> ExitCode {
    print!("{output}");
    match result {
        Ok(v) => {
            println!("{}", v.to_write_string());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let Some(file) = rest.first() else {
        return usage();
    };
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match sct_lang::compile_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "run" => {
            let mut m = Machine::new(&program, MachineConfig::standard());
            let r = m.run();
            let out = m.output.clone();
            report(r, &out)
        }
        "monitor" | "trace" => {
            let opts = match Options::parse(&rest[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if opts.plan_only {
                eprintln!("--plan is only valid with `sct hybrid`");
                return usage();
            }
            let mut config = MachineConfig {
                mode: SemanticsMode::Monitored,
                order: opts.order,
                fuel: opts.fuel,
                trace: cmd == "trace",
                ..MachineConfig::monitored(opts.strategy)
            };
            config.monitor.backoff = opts.backoff;
            config.monitor.loop_entries_only = opts.loop_entries;
            let mut m = Machine::new(&program, config);
            let r = m.run();
            if cmd == "trace" {
                for e in &m.trace_events {
                    let graph = e.graph.as_deref().unwrap_or("[table seeded]");
                    println!("({} {})    {}", e.function, e.args.join(" "), graph);
                }
            }
            eprintln!(
                "; applications={} monitored={} checks={} max-kont={}",
                m.stats.applications,
                m.stats.monitored_calls,
                m.stats.checks,
                m.stats.max_kont_depth
            );
            let out = m.output.clone();
            report(r, &out)
        }
        "hybrid" => {
            let opts = match Options::parse(&rest[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            // Eager refutation presumes the default order of Figure 5; a
            // custom monitor order may accept graphs the verifier's order
            // rejects, so only the proof side of the plan is kept then.
            let plan_config = PlanConfig {
                refute: !opts.custom_order,
                ..PlanConfig::default()
            };
            let plan = plan_program(&program, &plan_config);
            if opts.plan_only {
                print!("{}", plan.to_json());
                return ExitCode::SUCCESS;
            }
            eprintln!("; {plan}");
            if let Some(err) = refutation_error(&plan) {
                // [Decision::Refuted]: the monitor would blame this at run
                // time; the hybrid regime reports it before running.
                eprintln!("{err} (statically refuted before running)");
                return ExitCode::FAILURE;
            }
            let mut config = MachineConfig {
                mode: SemanticsMode::Monitored,
                order: opts.order,
                fuel: opts.fuel,
                plan: Some(Rc::new(plan)),
                ..MachineConfig::monitored(opts.strategy)
            };
            config.monitor.backoff = opts.backoff;
            config.monitor.loop_entries_only = opts.loop_entries;
            let mut m = Machine::new(&program, config);
            let r = m.run();
            eprintln!(
                "; applications={} monitored={} checks={} static-skips={} max-kont={}",
                m.stats.applications,
                m.stats.monitored_calls,
                m.stats.checks,
                m.stats.static_skips,
                m.stats.max_kont_depth
            );
            let out = m.output.clone();
            report(r, &out)
        }
        "verify" => {
            let Some(function) = rest.get(1) else {
                return usage();
            };
            let sig = rest.get(2).map(String::as_str).unwrap_or("");
            let (doms_text, result_text) = match sig.split_once("->") {
                Some((d, r)) => (d.trim(), r.trim()),
                None => (sig.trim(), "any"),
            };
            let domains: Vec<SymDomain> = if doms_text.is_empty() {
                // No signature: a nullary function.
                Vec::new()
            } else {
                match doms_text.split(',').map(parse_domain).collect() {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("{e}");
                        return usage();
                    }
                }
            };
            let result = match parse_domain(result_text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let verdict = sct_contracts::symbolic::verify_function(
                &program,
                function,
                &domains,
                result,
                &VerifyConfig::default(),
            );
            println!("{verdict}");
            if verdict.is_verified() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

//! `sct` — command-line front end for the termination-contract system.
//!
//! ```text
//! sct run <file.sct> [--metrics]           # standard semantics (λCSCT)
//! sct monitor <file.sct> [options]         # fully monitored (λSCT)
//! sct hybrid <file.sct> [--plan] [--dump-ir] [options] # static pre-pass + residual monitor
//! sct verify <file.sct> <function> [sig]   # static verification (§4)
//! sct trace <file.sct>                     # monitored run + Figure-1 trace
//! sct serve [--socket PATH] [--cache-dir DIR] [--threads N]
//!           [--deadline-ms MS] [--max-queue N] [--max-inflight-per-client N]
//!           [--faults SPEC] [--trace-out FILE]
//! sct fuzz [--seed S] [--cases N] [--budget-ms B] [--no-minimize] [--out DIR]
//! ```
//!
//! Options for `monitor`/`trace`/`hybrid`:
//!   --strategy imperative|cm      table strategy (default imperative)
//!   --order default|reverse-int|extended
//!   --backoff N                   exponential backoff factor
//!   --loop-entries                monitor loop entries only
//!   --fuel N                      step budget
//!   --cache-dir DIR               (hybrid) persistent plan cache
//!   --no-summaries                (hybrid) disable contract summaries:
//!                                 every application descends into the
//!                                 callee's body instead of stubbing
//!                                 already-verified callees (the A/B
//!                                 baseline for `report_plan`)
//!   --metrics                     print the final `sct-obs` registry
//!                                 snapshot as `; metric NAME VALUE`
//!                                 lines after the answer (plan time,
//!                                 ladder rungs, cache traffic, VM
//!                                 counters; histogram counts only —
//!                                 durations are nondeterministic)
//!
//! `hybrid` first plans the program: every `define` is run through the §4
//! verifier (with a fuel budget); proved functions skip the monitor at run
//! time, refuted ones are reported — with blame — before running, and the
//! rest stay monitored. `--plan` prints the decisions as `sct-plan/1` JSON
//! (schema in `sct_core::plan::EnforcementPlan::to_json`) instead of
//! running; `--dump-ir` prints the plan-directed IR listing (each call
//! site annotated with its baked-in skip/guarded/monitored decision; see
//! the `sct-ir` crate) instead of running. After a hybrid run a
//! `; plan: S static skips, M monitored calls` line summarizes what the
//! static proofs absorbed at run time. With `--cache-dir`, decisions
//! persist across invocations (content-addressed `sct-plan/2` entries;
//! see `sct-cache`) and a `; cache: H hits, M misses` line reports the
//! reuse.
//!
//! `serve` starts the long-running daemon: newline-delimited JSON
//! requests (`plan`, `run`, `hybrid`, `stats`, `metrics`, `shutdown`)
//! over stdio or a Unix socket, planning fanned out across a warm
//! worker pool — see `sct_contracts::serve` for the wire protocol.
//! `--deadline-ms` bounds each request's wall clock (planning past it
//! degrades to monitored decisions; execution past it stops with a
//! `deadline exceeded` error), `--max-queue` /
//! `--max-inflight-per-client` shed excess load with
//! `{"ok":false,"shed":true}` responses, and `--faults SPEC` (or the
//! `SCT_FAULTS` env var) arms the deterministic fault-injection layer
//! (`sct-faults`) for chaos testing, e.g.
//! `--faults 'cache.store.write=enospc@500;seed=7'`. `--trace-out FILE`
//! arms the structured tracer (`sct_obs::trace`): one JSONL event per
//! request span start/end, appended to `FILE`; every response's
//! `"trace"` field names its spans' trace id.
//!
//! `fuzz` runs the differential soundness campaign (`sct-fuzz`): `N`
//! seeded cases with constructed termination oracles, each checked
//! against the full enforcement lattice; violations are delta-debugged
//! and, with `--out DIR`, written as `.sct` counterexample files. The
//! last stdout line is the machine-readable `sct-fuzz/1` JSON summary.
//! Exit 0 when every case held, 1 when any invariant broke.
//!
//! `verify` signatures: a comma-separated parameter domain list and an
//! optional `-> result` domain, e.g. `nat,nat -> nat` (domains: nat, pos,
//! int, list, any; default any).
//!
//! Exit codes, uniform across subcommands: `0` success; `1` the program
//! (or verification obligation) failed — a size-change blame, a static
//! refutation, a runtime error, `not verified`; `2` usage or I/O — bad
//! flags, unreadable files, compile errors, bind failures.

use sct_cache::CacheObs;
use sct_contracts::interp::{ExtendedOrder, OrderHandle, ReverseIntOrder};
use sct_contracts::serve::{serve_stdio, serve_unix, ServeOptions, Server};
use sct_contracts::{
    plan_program_incremental, refutation_error, BackoffPolicy, DiskCache, EvalError, Machine,
    MachineConfig, PlanCache, PlanConfig, SemanticsMode, SymDomain, TableStrategy, VerifyConfig,
};
use sct_obs::trace;
use sct_symbolic::pipeline::PlanObs;
use sct_symbolic::NullStore as SymNullStore;
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::Arc;

/// Success.
const EXIT_OK: u8 = 0;
/// The program or obligation failed (blame, refutation, runtime error).
const EXIT_FAIL: u8 = 1;
/// Usage or I/O problem (flags, files, compile, bind).
const EXIT_USAGE: u8 = 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sct run <file> [--metrics]\n  sct monitor <file> [--strategy imperative|cm] \
         [--order default|reverse-int|extended] [--backoff N] [--loop-entries] [--fuel N]\n  \
         sct hybrid <file> [--plan] [--dump-ir] [--cache-dir DIR] [--no-summaries] [--metrics] \
         [monitor options]\n  \
         sct verify <file> <function> [domains [-> result]]\n  sct trace <file>\n  \
         sct serve [--socket PATH] [--cache-dir DIR] [--threads N] [--deadline-ms MS] \
         [--max-queue N] [--max-inflight-per-client N] [--faults SPEC] [--trace-out FILE]\n  \
         sct fuzz [--seed S] [--cases N] [--budget-ms B] [--no-minimize] [--verbose] [--out DIR]"
    );
    ExitCode::from(EXIT_USAGE)
}

struct Options {
    strategy: TableStrategy,
    order: OrderHandle,
    backoff: BackoffPolicy,
    loop_entries: bool,
    fuel: Option<u64>,
    plan_only: bool,
    dump_ir: bool,
    custom_order: bool,
    cache_dir: Option<String>,
    metrics: bool,
    no_summaries: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            strategy: TableStrategy::Imperative,
            order: OrderHandle::default_order(),
            backoff: BackoffPolicy::EveryCall,
            loop_entries: false,
            fuel: None,
            plan_only: false,
            dump_ir: false,
            custom_order: false,
            cache_dir: None,
            metrics: false,
            no_summaries: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--strategy" => {
                    o.strategy = match it.next().map(String::as_str) {
                        Some("imperative") => TableStrategy::Imperative,
                        Some("cm") | Some("continuation-mark") => TableStrategy::ContinuationMark,
                        other => return Err(format!("bad --strategy {other:?}")),
                    }
                }
                "--order" => {
                    o.order = match it.next().map(String::as_str) {
                        Some("default") => OrderHandle::default_order(),
                        Some("reverse-int") => {
                            o.custom_order = true;
                            OrderHandle::new(ReverseIntOrder)
                        }
                        Some("extended") => {
                            o.custom_order = true;
                            OrderHandle::new(ExtendedOrder)
                        }
                        other => return Err(format!("bad --order {other:?}")),
                    }
                }
                "--backoff" => {
                    let n: u32 = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad --backoff value")?;
                    o.backoff = BackoffPolicy::Exponential { factor: n };
                }
                "--loop-entries" => o.loop_entries = true,
                "--plan" => o.plan_only = true,
                "--dump-ir" => o.dump_ir = true,
                "--fuel" => {
                    o.fuel = Some(
                        it.next()
                            .and_then(|s| s.parse().ok())
                            .ok_or("bad --fuel value")?,
                    )
                }
                "--cache-dir" => {
                    o.cache_dir = Some(it.next().ok_or("missing --cache-dir value")?.clone())
                }
                "--metrics" => o.metrics = true,
                "--no-summaries" => o.no_summaries = true,
                other => return Err(format!("unknown option {other}")),
            }
        }
        Ok(o)
    }

    /// The monitored-run machine configuration all of `monitor`, `trace`,
    /// and `hybrid` share (the former duplicated setup blocks).
    fn machine_config(&self, trace: bool) -> MachineConfig {
        let mut config = MachineConfig {
            mode: SemanticsMode::Monitored,
            order: self.order.clone(),
            fuel: self.fuel,
            trace,
            ..MachineConfig::monitored(self.strategy)
        };
        config.monitor.backoff = self.backoff;
        config.monitor.loop_entries_only = self.loop_entries;
        config
    }
}

fn parse_domain(s: &str) -> Result<SymDomain, String> {
    match s.trim() {
        "nat" => Ok(SymDomain::Nat),
        "pos" => Ok(SymDomain::Pos),
        "int" => Ok(SymDomain::Int),
        "list" => Ok(SymDomain::List),
        "any" | "" => Ok(SymDomain::Any),
        other => Err(format!("unknown domain {other} (nat|pos|int|list|any)")),
    }
}

/// Prints buffered program output plus the result; exit 0 on a value,
/// 1 on any evaluation error (blame included).
fn report(result: Result<sct_contracts::Value, EvalError>, output: &str) -> ExitCode {
    print!("{output}");
    match result {
        Ok(v) => {
            println!("{}", v.to_write_string());
            ExitCode::from(EXIT_OK)
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(EXIT_FAIL)
        }
    }
}

/// Prints the process-global [`sct_obs::Registry`] snapshot as
/// `; metric NAME VALUE` lines on stderr, one per counter and gauge (in
/// name order — the snapshot is sorted), plus each histogram's
/// observation count as `NAME.count`. Histogram durations are elapsed
/// wall-clock and vary run to run, so only the deterministic count is
/// printed — the smoke tests replay these lines verbatim.
fn print_metrics() {
    let snap = sct_obs::Registry::global().snapshot();
    for (name, v) in &snap.counters {
        eprintln!("; metric {name} {v}");
    }
    for (name, v) in &snap.gauges {
        eprintln!("; metric {name} {v}");
    }
    for (name, h) in &snap.histograms {
        eprintln!("; metric {name}.count {}", h.count);
    }
}

/// Runs the machine and prints the shared `; applications=… …` counter
/// line (with the hybrid-only `static-skips` column when a plan is
/// active), then reports the result. With `metrics`, the machine's
/// statistics are published to the process-global registry and the
/// whole snapshot is printed after the counter lines.
fn run_and_report(
    program: &sct_contracts::lang::ast::Program,
    config: MachineConfig,
    metrics: bool,
) -> ExitCode {
    let hybrid = config.plan.is_some();
    let trace = config.trace;
    let mut m = Machine::new(program, config);
    let r = m.run();
    if trace {
        for e in &m.trace_events {
            let graph = e.graph.as_deref().unwrap_or("[table seeded]");
            println!("({} {})    {}", e.function, e.args.join(" "), graph);
        }
    }
    if hybrid {
        eprintln!(
            "; applications={} monitored={} checks={} static-skips={} max-kont={}",
            m.stats.applications,
            m.stats.monitored_calls,
            m.stats.checks,
            m.stats.static_skips,
            m.stats.max_kont_depth
        );
        // The run-time effect of the plan, in one human-readable line:
        // how many calls the static proofs absorbed vs. how many the
        // residual monitor still paid for.
        eprintln!(
            "; plan: {} static skips, {} monitored calls",
            m.stats.static_skips, m.stats.monitored_calls
        );
        // The inline caches on generic (first-class) call sites.
        eprintln!(
            "; pic: {} hits, {} misses, {} invalidations",
            m.stats.pic_hits, m.stats.pic_misses, m.stats.pic_invalidations
        );
    } else {
        eprintln!(
            "; applications={} monitored={} checks={} max-kont={}",
            m.stats.applications, m.stats.monitored_calls, m.stats.checks, m.stats.max_kont_depth
        );
    }
    let out = m.output.clone();
    let code = report(r, &out);
    if metrics {
        m.stats.publish(sct_obs::Registry::global());
        print_metrics();
    }
    code
}

fn serve_cmd(rest: &[String]) -> ExitCode {
    let mut socket: Option<String> = None;
    let mut options = ServeOptions::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.clone()),
                None => {
                    eprintln!("missing --socket value");
                    return usage();
                }
            },
            "--cache-dir" => match it.next() {
                Some(d) => options.cache_dir = Some(d.into()),
                None => {
                    eprintln!("missing --cache-dir value");
                    return usage();
                }
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => options.threads = n,
                None => {
                    eprintln!("bad --threads value");
                    return usage();
                }
            },
            "--deadline-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(ms) => options.deadline_ms = Some(ms),
                None => {
                    eprintln!("bad --deadline-ms value");
                    return usage();
                }
            },
            "--max-queue" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => options.max_queue = n,
                None => {
                    eprintln!("bad --max-queue value");
                    return usage();
                }
            },
            "--max-inflight-per-client" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => options.max_inflight_per_client = n,
                None => {
                    eprintln!("bad --max-inflight-per-client value");
                    return usage();
                }
            },
            "--faults" => match it.next() {
                Some(spec) => {
                    if let Err(e) = sct_faults::arm(spec) {
                        eprintln!("bad --faults spec: {e}");
                        return usage();
                    }
                }
                None => {
                    eprintln!("missing --faults value");
                    return usage();
                }
            },
            "--trace-out" => match it.next() {
                Some(path) => {
                    if let Err(e) = trace::to_file(std::path::Path::new(path)) {
                        eprintln!("cannot open trace file {path}: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
                None => {
                    eprintln!("missing --trace-out value");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown option {other}");
                return usage();
            }
        }
    }
    // Chaos runs can also arm failpoints via SCT_FAULTS / SCT_FAULTS_SEED
    // without touching the command line.
    match sct_faults::arm_from_env() {
        Ok(Some(spec)) => eprintln!("sct serve: failpoints armed from SCT_FAULTS: {spec}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("bad SCT_FAULTS spec: {e}");
            return usage();
        }
    }
    let server = match Server::new(options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let served = match socket {
        Some(path) => serve_unix(Arc::new(server), std::path::Path::new(&path)),
        None => serve_stdio(&server),
    };
    // Drain the trace sink's buffer before exiting — a bounded buffer
    // holds up to 32 KiB of events that have not hit the file yet.
    trace::flush();
    if trace::dropped() > 0 {
        eprintln!(
            "sct serve: {} trace events dropped (sink write failures)",
            trace::dropped()
        );
    }
    match served {
        Ok(()) => ExitCode::from(EXIT_OK),
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

fn fuzz_cmd(rest: &[String]) -> ExitCode {
    let mut opts = sct_fuzz::FuzzOptions {
        seed: 1,
        cases: 100,
        budget: None,
        minimize: true,
        verbose: false,
    };
    let mut out_dir: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => opts.seed = s,
                None => {
                    eprintln!("bad --seed value");
                    return usage();
                }
            },
            "--cases" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.cases = n,
                None => {
                    eprintln!("bad --cases value");
                    return usage();
                }
            },
            "--budget-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(ms) => opts.budget = Some(std::time::Duration::from_millis(ms)),
                None => {
                    eprintln!("bad --budget-ms value");
                    return usage();
                }
            },
            "--no-minimize" => opts.minimize = false,
            "--verbose" => opts.verbose = true,
            "--out" => match it.next() {
                Some(d) => out_dir = Some(d.clone()),
                None => {
                    eprintln!("missing --out value");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown option {other}");
                return usage();
            }
        }
    }
    let report = sct_fuzz::run_campaign(&opts, &sct_fuzz::FuzzConfig::default());
    for v in &report.violations {
        eprintln!("{v}\n");
    }
    // Minimized counterexamples as replayable `.sct` files — the CI step
    // uploads these as artifacts, and fixed ones get committed to
    // tests/fuzz_regressions/.
    if let Some(dir) = &out_dir {
        if !report.violations.is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {dir}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
            for (i, v) in report.violations.iter().enumerate() {
                let seed = v.seed.map_or_else(String::new, |s| format!("-seed{s}"));
                let path = format!("{dir}/{}{seed}-{i}.sct", v.kind.name());
                let program = v.minimized.as_deref().unwrap_or(&v.source);
                let body = format!("; {}\n{program}\n", v.detail.replace('\n', "\n; "));
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
                eprintln!("wrote {path}");
            }
        }
    }
    println!("{}", report.summary_json());
    if report.violations.is_empty() {
        ExitCode::from(EXIT_OK)
    } else {
        ExitCode::from(EXIT_FAIL)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    if cmd == "serve" {
        return serve_cmd(rest);
    }
    if cmd == "fuzz" {
        return fuzz_cmd(rest);
    }
    let Some(file) = rest.first() else {
        return usage();
    };
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let program = match sct_lang::compile_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    match cmd {
        "run" => {
            let mut metrics = false;
            for a in &rest[1..] {
                match a.as_str() {
                    "--metrics" => metrics = true,
                    other => {
                        eprintln!("unknown option {other}");
                        return usage();
                    }
                }
            }
            let mut m = Machine::new(&program, MachineConfig::standard());
            let r = m.run();
            let out = m.output.clone();
            let code = report(r, &out);
            if metrics {
                m.stats.publish(sct_obs::Registry::global());
                print_metrics();
            }
            code
        }
        "monitor" | "trace" | "hybrid" => {
            let opts = match Options::parse(&rest[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if cmd != "hybrid" {
                if opts.plan_only {
                    eprintln!("--plan is only valid with `sct hybrid`");
                    return usage();
                }
                if opts.dump_ir {
                    eprintln!("--dump-ir is only valid with `sct hybrid`");
                    return usage();
                }
                if opts.cache_dir.is_some() {
                    eprintln!("--cache-dir is only valid with `sct hybrid` and `sct serve`");
                    return usage();
                }
                if opts.no_summaries {
                    eprintln!("--no-summaries is only valid with `sct hybrid`");
                    return usage();
                }
                return run_and_report(&program, opts.machine_config(cmd == "trace"), opts.metrics);
            }

            // Eager refutation presumes the default order of Figure 5; a
            // custom monitor order may accept graphs the verifier's order
            // rejects, so only the proof side of the plan is kept then.
            let plan_config = PlanConfig {
                refute: !opts.custom_order,
                // `--no-summaries` forces full body descent at every
                // application — the A/B switch `report_plan` benches and
                // the soundness oracle tests compare against.
                summaries: !opts.no_summaries,
                // `--metrics` routes planner observability (plan time,
                // ladder rungs, fuel) into the global registry the final
                // snapshot prints from.
                obs: if opts.metrics {
                    PlanObs::global_registry()
                } else {
                    PlanObs::disabled()
                },
                ..PlanConfig::default()
            };
            let mut disk;
            let mut null = SymNullStore;
            let store: &mut dyn sct_symbolic::DecisionStore = match &opts.cache_dir {
                Some(dir) => match DiskCache::open(dir) {
                    Ok(c) => {
                        disk = if opts.metrics {
                            c.with_obs(CacheObs::register(sct_obs::Registry::global()))
                        } else {
                            c
                        };
                        &mut disk
                    }
                    Err(e) => {
                        eprintln!("cannot open cache dir {dir}: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                },
                None => &mut null,
            };
            let (plan, stats) =
                plan_program_incremental(&program, &plan_config, &mut PlanCache::new(), store);
            if opts.cache_dir.is_some() {
                eprintln!("; {stats}");
            }
            if opts.plan_only {
                print!("{}", plan.to_json());
                return ExitCode::from(EXIT_OK);
            }
            if opts.dump_ir {
                // The plan-directed IR: each call site shows the baked-in
                // enforcement decision (skip / guarded / monitored /
                // generic).
                let compiled = sct_contracts::ir::compile(&program, Some(&plan));
                print!("{}", sct_contracts::ir::dump(&compiled));
                return ExitCode::from(EXIT_OK);
            }
            eprintln!("; {plan}");
            if let Some(err) = refutation_error(&plan) {
                // [Decision::Refuted]: the monitor would blame this at run
                // time; the hybrid regime reports it before running.
                eprintln!("{err} (statically refuted before running)");
                return ExitCode::from(EXIT_FAIL);
            }
            let mut config = opts.machine_config(false);
            config.plan = Some(Rc::new(plan));
            run_and_report(&program, config, opts.metrics)
        }
        "verify" => {
            let Some(function) = rest.get(1) else {
                return usage();
            };
            let sig = rest.get(2).map(String::as_str).unwrap_or("");
            let (doms_text, result_text) = match sig.split_once("->") {
                Some((d, r)) => (d.trim(), r.trim()),
                None => (sig.trim(), "any"),
            };
            let domains: Vec<SymDomain> = if doms_text.is_empty() {
                // No signature: a nullary function.
                Vec::new()
            } else {
                match doms_text.split(',').map(parse_domain).collect() {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("{e}");
                        return usage();
                    }
                }
            };
            let result = match parse_domain(result_text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let verdict = sct_contracts::symbolic::verify_function(
                &program,
                function,
                &domains,
                result,
                &VerifyConfig::default(),
            );
            println!("{verdict}");
            if verdict.is_verified() {
                ExitCode::from(EXIT_OK)
            } else {
                ExitCode::from(EXIT_FAIL)
            }
        }
        _ => usage(),
    }
}

//! # sct-contracts
//!
//! Size-change termination as a contract: dynamic and static enforcement
//! of termination for higher-order programs — a Rust reproduction of
//! Nguyễn, Gilray, Tobin-Hochstadt & Van Horn, PLDI 2019.
//!
//! The workspace provides, and this crate re-exports:
//!
//! * [`lang`] — the λSCT language front end (Scheme subset → core AST);
//! * [`core`] — size-change graphs, `prog?`, well-founded orders, tables,
//!   blame: the paper's §3 machinery;
//! * [`interp`] — one CEK machine running the standard ⇓, monitored ⬇, and
//!   call-sequence ↓↓ semantics, with `terminating/c` contracts and both
//!   §5 table strategies;
//! * [`symbolic`] — the §4 static verifier (symbolic execution + built-in
//!   solver + Lee–Jones–Ben-Amram closure check);
//! * [`corpus`] — the paper's evaluation programs and workloads.
//!
//! # Quick start
//!
//! Dynamically enforce termination of one function:
//!
//! ```
//! use sct_contracts::{run, EvalError};
//!
//! // ack is wrapped in terminating/c: its dynamic extent is monitored.
//! let v = run("
//!   (define (ack m n)
//!     (cond [(= 0 m) (+ 1 n)]
//!           [(= 0 n) (ack (- m 1) 1)]
//!           [else (ack (- m 1) (ack m (- n 1)))]))
//!   (define checked-ack (terminating/c ack))
//!   (checked-ack 2 3)").unwrap();
//! assert_eq!(v.to_write_string(), "9");
//!
//! // A diverging function under contract is stopped, with blame.
//! let err = run("
//!   (define f (terminating/c (lambda (x) (f x)) \"my-party\"))
//!   (f 1)").unwrap_err();
//! assert!(matches!(err, EvalError::Sc(_)));
//! ```
//!
//! Statically verify the same function (§4):
//!
//! ```
//! use sct_contracts::{verify, SymDomain};
//!
//! let verdict = verify(
//!     "(define (ack m n)
//!        (cond [(= 0 m) (+ 1 n)]
//!              [(= 0 n) (ack (- m 1) 1)]
//!              [else (ack (- m 1) (ack m (- n 1)))]))",
//!     "ack",
//!     &[SymDomain::Nat, SymDomain::Nat],
//!     SymDomain::Nat,
//! ).unwrap();
//! assert!(verdict.is_verified());
//! ```
//!
//! Or combine the two regimes — statically discharge what the verifier can
//! prove, monitor only the residual ([`run_hybrid`]; see
//! `docs/GUIDE.md` for the full walkthrough):
//!
//! ```
//! use sct_contracts::run_hybrid;
//!
//! let v = run_hybrid("
//!   (define (ack m n)
//!     (cond [(= 0 m) (+ 1 n)]
//!           [(= 0 n) (ack (- m 1) 1)]
//!           [else (ack (- m 1) (ack m (- n 1)))]))
//!   (ack 2 3)").unwrap();
//! assert_eq!(v.to_write_string(), "9");
//! ```

pub mod serve;

pub use sct_cache as cache;
pub use sct_core as core;
pub use sct_corpus as corpus;
pub use sct_interp as interp;
pub use sct_ir as ir;
pub use sct_lang as lang;
pub use sct_sexpr as sexpr;
pub use sct_symbolic as symbolic;

pub use sct_cache::{CacheStats, DiskCache, MemStore};
pub use sct_core::monitor::{BackoffPolicy, KeyStrategy, MonitorConfig, TableStrategy};
pub use sct_core::plan::{Decision, EnforcementPlan, FnDecision, PlanDomain};
pub use sct_interp::{EvalError, Machine, MachineConfig, SemanticsMode, Value};
pub use sct_symbolic::{
    plan_program, plan_program_incremental, IncrementalStats, PlanCache, PlanConfig, StaticVerdict,
    SymDomain, VerifyConfig,
};
pub use serve::{serve_stdio, serve_unix, ServeOptions, Server};

use sct_core::seq::ScViolation;
use sct_interp::{RtError, ScErrorInfo};
use std::rc::Rc;

/// Runs a program under the standard semantics — `terminating/c` extents
/// are monitored, everything else runs unchecked (λCSCT).
///
/// # Errors
///
/// Compile errors are reported as [`EvalError::Rt`]; monitored extents can
/// raise [`EvalError::Sc`].
pub fn run(source: &str) -> Result<Value, EvalError> {
    sct_interp::eval_str(source)
}

/// Runs a program under the fully monitored semantics ⬇ (λSCT): every
/// closure application is checked, so evaluation always terminates —
/// either with the value or with `errorSC` (Theorem 3.1).
///
/// # Errors
///
/// As [`run`], plus [`EvalError::Sc`] on any size-change violation.
pub fn run_monitored(source: &str) -> Result<Value, EvalError> {
    sct_interp::eval_str_monitored(source, TableStrategy::Imperative)
}

/// Runs a program under the *hybrid* enforcement pipeline: a static
/// pre-pass ([`plan_program`]) discharges `terminating/c` for every
/// `define` it can prove, the monitor guards only the residual, and a
/// statically *refuted* function is reported — with the same blame label
/// the monitor would produce at run time — before the program runs.
///
/// ```
/// use sct_contracts::run_hybrid;
///
/// // sum is statically discharged (nat-guarded): the monitored run skips
/// // its checks entirely and executes at ~unchecked speed.
/// let v = run_hybrid(
///     "(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))
///      (sum 1000 0)").unwrap();
/// assert_eq!(v.to_write_string(), "500500");
///
/// // A statically refuted function is blamed before running.
/// use sct_contracts::EvalError;
/// let err = run_hybrid(
///     "(define f (terminating/c (lambda (x) (f x)) \"my-party\")) (f 1)")
///     .unwrap_err();
/// assert!(matches!(err, EvalError::Sc(info) if info.blame.as_deref() == Some("my-party")));
/// ```
///
/// # Errors
///
/// As [`run_monitored`], plus the eager [`EvalError::Sc`] refutation
/// report described above.
pub fn run_hybrid(source: &str) -> Result<Value, EvalError> {
    let prog = sct_lang::compile_program(source)
        .map_err(|e| EvalError::Rt(RtError::new(format!("compile error: {e}"))))?;
    let plan = plan_program(&prog, &PlanConfig::default());
    if let Some(err) = refutation_error(&plan) {
        return Err(err);
    }
    let config = MachineConfig {
        plan: Some(Rc::new(plan)),
        ..MachineConfig::monitored(TableStrategy::Imperative)
    };
    Machine::new(&prog, config).run()
}

/// The eager refutation report for a plan: the first statically refuted
/// function rendered as the `errorSC` the dynamic monitor would raise —
/// same violation witness, same function name, same blame label.
pub fn refutation_error(plan: &EnforcementPlan) -> Option<EvalError> {
    plan.refuted().next().map(|d| {
        let Decision::Refuted { witness, culprit } = &d.decision else {
            unreachable!("refuted() yields only Refuted decisions");
        };
        EvalError::Sc(ScErrorInfo {
            blame: d.blame.as_deref().map(Rc::from),
            function: culprit.clone(),
            violation: ScViolation {
                witness: witness.clone(),
            },
        })
    })
}

/// Statically verifies that `function` terminates on all inputs in the
/// given domains (§4).
///
/// # Errors
///
/// Returns the compile error message when the source does not compile.
pub fn verify(
    source: &str,
    function: &str,
    domains: &[SymDomain],
    result: SymDomain,
) -> Result<StaticVerdict, String> {
    let prog = sct_lang::compile_program(source).map_err(|e| e.to_string())?;
    Ok(sct_symbolic::verify_function(
        &prog,
        function,
        domains,
        result,
        &VerifyConfig::default(),
    ))
}

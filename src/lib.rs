//! # sct-contracts
//!
//! Size-change termination as a contract: dynamic and static enforcement
//! of termination for higher-order programs — a Rust reproduction of
//! Nguyễn, Gilray, Tobin-Hochstadt & Van Horn, PLDI 2019.
//!
//! The workspace provides, and this crate re-exports:
//!
//! * [`lang`] — the λSCT language front end (Scheme subset → core AST);
//! * [`core`] — size-change graphs, `prog?`, well-founded orders, tables,
//!   blame: the paper's §3 machinery;
//! * [`interp`] — one CEK machine running the standard ⇓, monitored ⬇, and
//!   call-sequence ↓↓ semantics, with `terminating/c` contracts and both
//!   §5 table strategies;
//! * [`symbolic`] — the §4 static verifier (symbolic execution + built-in
//!   solver + Lee–Jones–Ben-Amram closure check);
//! * [`corpus`] — the paper's evaluation programs and workloads.
//!
//! # Quick start
//!
//! Dynamically enforce termination of one function:
//!
//! ```
//! use sct_contracts::{run, EvalError};
//!
//! // ack is wrapped in terminating/c: its dynamic extent is monitored.
//! let v = run("
//!   (define (ack m n)
//!     (cond [(= 0 m) (+ 1 n)]
//!           [(= 0 n) (ack (- m 1) 1)]
//!           [else (ack (- m 1) (ack m (- n 1)))]))
//!   (define checked-ack (terminating/c ack))
//!   (checked-ack 2 3)").unwrap();
//! assert_eq!(v.to_write_string(), "9");
//!
//! // A diverging function under contract is stopped, with blame.
//! let err = run("
//!   (define f (terminating/c (lambda (x) (f x)) \"my-party\"))
//!   (f 1)").unwrap_err();
//! assert!(matches!(err, EvalError::Sc(_)));
//! ```
//!
//! Statically verify the same function (§4):
//!
//! ```
//! use sct_contracts::{verify, SymDomain};
//!
//! let verdict = verify(
//!     "(define (ack m n)
//!        (cond [(= 0 m) (+ 1 n)]
//!              [(= 0 n) (ack (- m 1) 1)]
//!              [else (ack (- m 1) (ack m (- n 1)))]))",
//!     "ack",
//!     &[SymDomain::Nat, SymDomain::Nat],
//!     SymDomain::Nat,
//! ).unwrap();
//! assert!(verdict.is_verified());
//! ```

pub use sct_core as core;
pub use sct_corpus as corpus;
pub use sct_interp as interp;
pub use sct_lang as lang;
pub use sct_sexpr as sexpr;
pub use sct_symbolic as symbolic;

pub use sct_core::monitor::{BackoffPolicy, KeyStrategy, MonitorConfig, TableStrategy};
pub use sct_interp::{EvalError, Machine, MachineConfig, SemanticsMode, Value};
pub use sct_symbolic::{StaticVerdict, SymDomain, VerifyConfig};

/// Runs a program under the standard semantics — `terminating/c` extents
/// are monitored, everything else runs unchecked (λCSCT).
///
/// # Errors
///
/// Compile errors are reported as [`EvalError::Rt`]; monitored extents can
/// raise [`EvalError::Sc`].
pub fn run(source: &str) -> Result<Value, EvalError> {
    sct_interp::eval_str(source)
}

/// Runs a program under the fully monitored semantics ⬇ (λSCT): every
/// closure application is checked, so evaluation always terminates —
/// either with the value or with `errorSC` (Theorem 3.1).
///
/// # Errors
///
/// As [`run`], plus [`EvalError::Sc`] on any size-change violation.
pub fn run_monitored(source: &str) -> Result<Value, EvalError> {
    sct_interp::eval_str_monitored(source, TableStrategy::Imperative)
}

/// Statically verifies that `function` terminates on all inputs in the
/// given domains (§4).
///
/// # Errors
///
/// Returns the compile error message when the source does not compile.
pub fn verify(
    source: &str,
    function: &str,
    domains: &[SymDomain],
    result: SymDomain,
) -> Result<StaticVerdict, String> {
    let prog = sct_lang::compile_program(source).map_err(|e| e.to_string())?;
    Ok(sct_symbolic::verify_function(
        &prog,
        function,
        domains,
        result,
        &VerifyConfig::default(),
    ))
}

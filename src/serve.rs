//! The `sct serve` daemon: amortize planning across requests and clients.
//!
//! `sct hybrid` pays compile + plan + run per invocation. For the
//! production posture the ROADMAP aims at — many programs, many edits,
//! many clients — the expensive part (symbolic exploration + the
//! Lee–Jones–Ben-Amram closure check) should be paid *once per distinct
//! define*, ever. This module provides the long-running form:
//!
//! * a [`Server`] holds one warm process state — a persistent
//!   [`DecisionStore`] (on-disk via `--cache-dir`, in-memory otherwise)
//!   shared by every request, plus one
//!   [`PlanCache`] (interner + LJB memo) *per worker thread* that stays
//!   warm across requests;
//! * `plan`/`hybrid` requests fan the program's `define`s out across the
//!   worker pool ([`plan_program_subset`] slices), so multi-define
//!   programs plan in parallel;
//! * any number of clients connect over a Unix socket (or a single client
//!   over stdio) and receive independent, correct results — program
//!   execution is per-connection, planning is shared-nothing except the
//!   content-addressed store, which is safe by construction.
//!
//! # Wire protocol
//!
//! Newline-delimited JSON: one request object per line in, one response
//! object per line out, in order. Requests:
//!
//! ```json
//! {"op":"plan",   "source":"(define (f x) …) …", "id":7}
//! {"op":"run",    "source":"…", "fuel":100000}
//! {"op":"hybrid", "source":"…"}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! `id` (any JSON value) is echoed back verbatim for client correlation;
//! `fuel` optionally bounds `run`/`hybrid` executions. Two more optional
//! request fields feed the robustness machinery: `"deadline_ms"` bounds
//! this request's wall-clock budget (capped by the server-wide
//! [`ServeOptions::deadline_ms`] when both are set), and `"client"` names
//! the quota bucket for [`ServeOptions::max_inflight_per_client`]
//! (defaulting to the connection identity). Responses always carry
//! `"ok"` and `"op"`:
//!
//! * `plan` → `{"ok":true,"op":"plan","plan":<sct-plan/1 doc>,
//!   "cache":{"hits":H,"misses":M,"warm":bool},"defines":[["name",hit?],…]}`
//!   — `warm` is true when every define loaded from the decision store
//!   (zero symbolic exploration on this request).
//! * `run` / `hybrid` → `{"ok":true,…,"value":"…","output":"…",
//!   "stats":{…},"compiled":"cached"|"fresh"}`, or on failure
//!   `{"ok":false,…,"error":"…","blame":"…"|null,"refuted":bool}` (a
//!   `hybrid` refutation is reported without running, `refuted` =
//!   `true`). `hybrid` responses also carry the `cache` object, so
//!   daemon clients can observe warm-plan behavior per request;
//!   `compiled` reports whether the flat-IR image was reused from the
//!   per-thread compile cache (compiled once per distinct source, reused
//!   across requests).
//! * `stats` → request counters, aggregate cache traffic
//!   ([`sct_cache::CacheStats`]), the aggregate plan effect
//!   (`"plan":{"static_skips":…,"monitored_calls":…}` summed over every
//!   execution served), worker count, uptime, and per-op latency
//!   summaries (`"latency":{"plan":{"count":…,"p50_us":…,…},…}`).
//! * `metrics` → `{"ok":true,"op":"metrics","metrics":<sct-obs
//!   snapshot>}` — the server's full [`sct_obs::Registry`] snapshot:
//!   every `serve.*`, `cache.*`, `plan.*`, and `vm.*` counter, gauge,
//!   and histogram, coherent at one point in time. With
//!   `"format":"prometheus"` the snapshot arrives instead as
//!   Prometheus-style exposition text under `"text"`. The `stats` op
//!   and the `metrics` op read the *same* atomics, so their counts
//!   always reconcile.
//! * `shutdown` → `{"ok":true,"op":"shutdown"}`, then the daemon exits
//!   (stdio: the loop returns; socket: the process terminates).
//!
//! Every response also carries `"trace"`: the 16-hex-digit trace id of
//! the request's root span. With `--trace-out FILE` the daemon appends
//! one JSONL event per span start/end (and per notable event — shed
//! decisions, monitor blame with the call-sequence witness) to `FILE`;
//! the echoed id is the join key between a response and its spans.
//!
//! Malformed lines never kill the connection: they produce
//! `{"ok":false,"error":…}` and the daemon keeps reading.
//!
//! # Failure domains and the degradation ladder
//!
//! The daemon is supervised from the inside; every failure is contained
//! to the smallest domain that can absorb it (see
//! `docs/ARCHITECTURE.md` for the full ladder):
//!
//! * **A planning job** that panics is caught in the worker
//!   (`catch_unwind`), the worker's warm caches are discarded (they may
//!   be mid-mutation), and the request gets a distinct error — the
//!   worker thread survives.
//! * **A worker thread** that dies anyway (a panic outside the job
//!   guard) drops its job's reply sender; the waiting request sees the
//!   disconnect *immediately* — not after a timeout — and answers with
//!   a distinct error, and the pool respawns the thread before the next
//!   dispatch.
//! * **A deadline** ([`ServeOptions::deadline_ms`] or the request's
//!   `deadline_ms`) degrades instead of erroring: `define`s the workers
//!   have not answered by the deadline get fabricated
//!   `Decision::Monitor` decisions — sound, maximally pessimistic, and
//!   never persisted under content keys — and executions stop with a
//!   `deadline exceeded` error. A stalled worker's late real answer
//!   still lands in the store, so the next request self-heals to the
//!   precise plan.
//! * **Overload** is shed at admission: past
//!   [`ServeOptions::max_queue`] globally or
//!   [`ServeOptions::max_inflight_per_client`] per client, expensive
//!   requests get an immediate well-formed
//!   `{"ok":false,"shed":true,…}` instead of queueing without bound.
//! * **A client connection** failing (read error, thread panic) ends
//!   only that connection; panics are counted in `errors`.
//! * **A poisoned lock** (some thread panicked while holding it) is
//!   recovered, not propagated: every lock in this module protects
//!   plain counters or cache state that is valid under torn updates.
//!
//! The `stats` op exposes the self-healing counters: `requests.shed`,
//! `requests.deadline_exceeded`, `worker_restarts`, and the cache's
//! `quarantined` count.
//!
//! # Examples
//!
//! In-process (no I/O): drive the server with protocol lines directly.
//!
//! ```
//! use sct_contracts::serve::{Server, ServeOptions};
//!
//! let server = Server::new(ServeOptions { threads: 2, ..ServeOptions::default() }).unwrap();
//! let req = r#"{"op":"hybrid","source":"(define (len l) (if (null? l) 0 (+ 1 (len (cdr l))))) (len '(1 2 3))"}"#;
//! let out = server.handle_line(req).response.unwrap();
//! assert!(out.contains("\"ok\":true"), "{out}");
//! assert!(out.contains("\"value\":\"3\""), "{out}");
//! ```

use sct_cache::{CacheObs, CacheStats, DiskCache, MemStore};
use sct_core::json::{parse, Json};
use sct_core::monitor::TableStrategy;
use sct_core::plan::{Decision, EnforcementPlan, FnDecision};
use sct_interp::{EvalError, Machine, MachineConfig, SemanticsMode, Stats};
use sct_ir::CompiledProgram;
use sct_lang::ast::{Program, TopForm};
use sct_obs::{trace, Counter, Gauge, Histogram, HistogramSnapshot, Registry};
use sct_symbolic::pipeline::{
    monitor_fallback_decisions, plan_program_subset, DecisionStore, IncrementalStats, PlanCache,
    PlanConfig, PlanObs, DEADLINE_REASON,
};
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// How long a request waits for the planning pool before concluding the
/// pool is wedged, when no deadline bounds the request (a defensive
/// bound; jobs normally finish in milliseconds and are budget-capped by
/// [`PlanConfig`]). Worker *death* is detected immediately regardless —
/// the reply channel disconnects — so this bound only covers a silently
/// stalled worker.
const POOL_REPLY_TIMEOUT: Duration = Duration::from_secs(300);

/// How long past an expired request deadline the collector still accepts
/// worker replies before fabricating degraded decisions for the rest.
/// Long enough for a reply already in flight (a store hit, a worker's
/// own in-pass degradation — microseconds) to land; short enough that a
/// genuinely stalled worker cannot stretch the request much past its
/// deadline.
const DEADLINE_GRACE: Duration = Duration::from_millis(100);

/// Locks `m`, recovering from poisoning. Every mutex in this module
/// protects plain counters or cache/state maps that remain valid under a
/// torn update (the worst a panicking holder can leave behind is a lost
/// counter increment or a stale cache entry, both benign), so inheriting
/// a panicked thread's poison — and taking the daemon down with it —
/// would turn a contained failure into total unavailability.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Cap on s-expression nesting depth in request sources. The reader,
/// resolver, and digest walks all recurse per nesting level, and a stack
/// overflow is an *abort* — it would take every client down, which the
/// protocol's "malformed lines never kill the daemon" posture forbids.
/// Real programs nest a few dozen levels; the scan is conservative
/// (bracket characters inside string literals count toward the depth).
const MAX_SOURCE_DEPTH: i64 = 1_000;

/// Rejects sources whose bracket nesting could overflow the recursive
/// compile/digest walks. A linear, non-recursive scan.
fn source_depth_ok(source: &str) -> Result<(), String> {
    let mut depth = 0i64;
    let mut max = 0i64;
    for c in source.chars() {
        match c {
            '(' | '[' => {
                depth += 1;
                max = max.max(depth);
            }
            // Clamp at zero: real nesting can never go below zero, but
            // close-brackets hidden where the lexer ignores them (line
            // comments, string literals) could otherwise drive the tally
            // negative and mask arbitrarily deep real nesting from this
            // guard.
            ')' | ']' => depth = (depth - 1).max(0),
            _ => {}
        }
    }
    if max > MAX_SOURCE_DEPTH {
        Err(format!(
            "source nesting depth {max} exceeds the daemon limit of {MAX_SOURCE_DEPTH}"
        ))
    } else {
        Ok(())
    }
}

/// Configuration for [`Server::new`].
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Planning worker threads; `0` picks the machine's available
    /// parallelism (capped at 8).
    pub threads: usize,
    /// Directory for the persistent plan cache; `None` keeps decisions in
    /// memory only (still warm across requests, lost on exit).
    pub cache_dir: Option<PathBuf>,
    /// Wall-clock budget per `plan`/`run`/`hybrid` request, in
    /// milliseconds. Planning past the deadline degrades to
    /// `Decision::Monitor` (never an error, never persisted); execution
    /// past it stops with a `deadline exceeded` error. `None` leaves
    /// requests unbounded (a request's own `"deadline_ms"` still
    /// applies; with both set the smaller wins).
    pub deadline_ms: Option<u64>,
    /// Admission bound on concurrently executing expensive requests
    /// (`plan`/`run`/`hybrid`) across all clients; past it requests are
    /// shed with `{"ok":false,"shed":true}` instead of queueing. `0`
    /// disables the bound.
    pub max_queue: usize,
    /// Admission bound per client (the request's `"client"` field, else
    /// the connection). `0` disables the bound.
    pub max_inflight_per_client: usize,
}

/// The shared store behind the daemon: disk-backed or in-memory.
enum StoreKind {
    Disk(DiskCache),
    Mem(MemStore),
}

impl StoreKind {
    fn traffic(&self) -> CacheStats {
        match self {
            StoreKind::Disk(d) => d.stats(),
            StoreKind::Mem(m) => m.stats(),
        }
    }
}

impl DecisionStore for StoreKind {
    fn load(&mut self, key: &str) -> Option<sct_core::plan_codec::PortableDecision> {
        match self {
            StoreKind::Disk(d) => d.load(key),
            StoreKind::Mem(m) => m.load(key),
        }
    }
    fn store(&mut self, key: &str, entry: &sct_core::plan_codec::PortableDecision) {
        match self {
            StoreKind::Disk(d) => d.store(key, entry),
            StoreKind::Mem(m) => m.store(key, entry),
        }
    }
    fn load_summary(&mut self, key: &str) -> Option<sct_core::summary_codec::PortableSummary> {
        match self {
            StoreKind::Disk(d) => d.load_summary(key),
            StoreKind::Mem(m) => m.load_summary(key),
        }
    }
    fn store_summary(&mut self, key: &str, summary: &sct_core::summary_codec::PortableSummary) {
        match self {
            StoreKind::Disk(d) => d.store_summary(key, summary),
            StoreKind::Mem(m) => m.store_summary(key, summary),
        }
    }
}

/// A [`DecisionStore`] view over the shared store: workers lock per
/// operation, so store I/O serializes but exploration (the expensive
/// part) runs fully in parallel.
struct SharedStore(Arc<Mutex<StoreKind>>);

impl DecisionStore for SharedStore {
    fn load(&mut self, key: &str) -> Option<sct_core::plan_codec::PortableDecision> {
        lock_or_recover(&self.0).load(key)
    }
    fn store(&mut self, key: &str, entry: &sct_core::plan_codec::PortableDecision) {
        lock_or_recover(&self.0).store(key, entry)
    }
    fn load_summary(&mut self, key: &str) -> Option<sct_core::summary_codec::PortableSummary> {
        lock_or_recover(&self.0).load_summary(key)
    }
    fn store_summary(&mut self, key: &str, summary: &sct_core::summary_codec::PortableSummary) {
        lock_or_recover(&self.0).store_summary(key, summary)
    }
}

/// A worker's answer: `(top-form position, decision, hit?)` per planned
/// define, or a compile-error message.
type JobResult = Result<Vec<(usize, FnDecision, bool)>, String>;

/// One fan-out unit: plan the defines at `positions` of `source`.
struct Job {
    source: Arc<str>,
    positions: Vec<usize>,
    config: PlanConfig,
    reply: mpsc::Sender<JobResult>,
}

/// State shared between the pool handle and its workers — split out so
/// supervision can respawn a worker from nothing but an `Arc` of it.
struct PoolShared {
    store: Arc<Mutex<StoreKind>>,
    jobs_rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    /// Worker threads respawned after dying mid-job (surfaced in
    /// `stats` as `worker_restarts` — the handle is the server's
    /// `serve.worker_restarts` registry counter).
    restarts: Counter,
    /// Death notes: one message per worker that dies mid-job, sent
    /// during its unwind *before* the job's reply sender drops. That
    /// ordering is the supervision guarantee — by the time any client
    /// observes a `worker died` disconnect, the note is already queued,
    /// so the next [`PlanPool::ensure_workers`] respawns
    /// deterministically instead of racing `JoinHandle::is_finished`
    /// against the tail of the unwind.
    deaths_tx: mpsc::Sender<()>,
}

/// Armed while a worker holds a job: its `Drop` runs during an unwind
/// and files the death note. Defused after the reply is sent, so normal
/// completion (and clean shutdown) files nothing.
struct DeathNote {
    tx: mpsc::Sender<()>,
    armed: bool,
}

impl Drop for DeathNote {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.tx.send(());
        }
    }
}

/// One worker's receive-plan-reply loop.
fn worker_body(shared: &PoolShared) {
    // The warm per-worker state. The AST is Rc-based (not Send), so each
    // worker compiles its own copy of the source — compilation is linear
    // and cheap next to symbolic exploration.
    let mut cache = PlanCache::new();
    loop {
        let job = {
            let guard = lock_or_recover(&shared.jobs_rx);
            guard.recv()
        };
        let Ok(job) = job else { return };
        // Declared after `job` so the unwind drops it *first*: the death
        // note reaches the supervisor before the reply sender disconnects.
        let mut note = DeathNote {
            tx: shared.deaths_tx.clone(),
            armed: true,
        };
        // Fault-injection site *outside* the recovery guard: a `panic`
        // action here kills the whole worker thread while it holds the
        // job, dropping the reply sender — the exact shape supervision
        // must detect (immediate disconnect) and repair (respawn).
        sct_faults::act("serve.pool.worker");
        let outcome = panic::catch_unwind(panic::AssertUnwindSafe(|| {
            sct_faults::act("serve.pool.job");
            match sct_lang::compile_program(&job.source) {
                Ok(program) => Ok(plan_program_subset(
                    &program,
                    &job.config,
                    &mut cache,
                    &mut SharedStore(Arc::clone(&shared.store)),
                    &job.positions,
                )),
                Err(e) => Err(format!("compile error: {e}")),
            }
        }));
        let result = outcome.unwrap_or_else(|_| {
            // In-place recovery: the interner/memo may be mid-mutation,
            // so the warm state is forfeit — a cold cache is merely slow,
            // a torn one would be wrong.
            cache = PlanCache::new();
            Err("planning worker panicked (recovered; retry the request)".to_string())
        });
        // A gone receiver just means the client hung up.
        let _ = job.reply.send(result);
        note.armed = false;
    }
}

fn spawn_worker(label: u64, shared: Arc<PoolShared>) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name(format!("sct-plan-{label}"))
        .spawn(move || worker_body(&shared))
        .expect("spawning plan worker")
}

/// RAII debt against the `serve.queue_depth` gauge: one unit per job a
/// request has dispatched and not yet collected. Drop settles whatever
/// is still outstanding, so every exit path — success, worker death,
/// deadline fabrication — restores the gauge.
struct QueueDebt<'a> {
    gauge: &'a Gauge,
    outstanding: i64,
}

impl QueueDebt<'_> {
    fn incur(&mut self) {
        self.gauge.inc();
        self.outstanding += 1;
    }
    fn settle(&mut self) {
        self.gauge.dec();
        self.outstanding -= 1;
    }
}

impl Drop for QueueDebt<'_> {
    fn drop(&mut self) {
        self.gauge.add(-self.outstanding);
    }
}

/// What [`PlanPool::plan`] produced for one request.
struct PlannedSource {
    program: Program,
    plan: EnforcementPlan,
    stats: IncrementalStats,
}

/// The planning thread pool. Workers are spawned once and live for the
/// daemon's lifetime, each holding its own [`PlanCache`] — interner plus
/// LJB closure memo — that stays warm across requests and clients. A
/// worker that dies mid-job is respawned before the next dispatch.
struct PlanPool {
    jobs: mpsc::Sender<Job>,
    threads: usize,
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Receives one note per worker death (see [`PoolShared::deaths_tx`]).
    deaths_rx: Mutex<mpsc::Receiver<()>>,
    /// `serve.queue_depth`: planning jobs dispatched to the pool and not
    /// yet answered (or fabricated past their deadline).
    queue_depth: Gauge,
}

impl PlanPool {
    fn new(
        threads: usize,
        store: Arc<Mutex<StoreKind>>,
        restarts: Counter,
        queue_depth: Gauge,
    ) -> PlanPool {
        let (tx, rx) = mpsc::channel::<Job>();
        let (deaths_tx, deaths_rx) = mpsc::channel::<()>();
        let shared = Arc::new(PoolShared {
            store,
            jobs_rx: Arc::new(Mutex::new(rx)),
            restarts,
            deaths_tx,
        });
        let workers = (0..threads)
            .map(|i| spawn_worker(i as u64, Arc::clone(&shared)))
            .collect();
        PlanPool {
            jobs: tx,
            threads,
            shared,
            workers: Mutex::new(workers),
            deaths_rx: Mutex::new(deaths_rx),
            queue_depth,
        }
    }

    /// Lifetime count of worker respawns.
    fn restarts(&self) -> u64 {
        self.shared.restarts.get()
    }

    /// Supervision: respawn a replacement per filed death note and reap
    /// finished handles, keeping the pool at its configured width.
    /// Called before every dispatch, so a crashed worker costs at most
    /// the one request that was on it. Counting from the notes (not
    /// from `is_finished`) makes `worker_restarts` deterministic: the
    /// note is queued before the dying worker's reply disconnect is
    /// observable, while the thread itself may still be unwinding.
    fn ensure_workers(&self) {
        let mut workers = lock_or_recover(&self.workers);
        loop {
            let death = lock_or_recover(&self.deaths_rx).try_recv();
            if death.is_err() {
                break;
            }
            self.shared.restarts.inc();
            let n = self.shared.restarts.get();
            eprintln!("sct serve: plan worker died; respawning (restart #{n})");
            workers.push(spawn_worker(
                self.threads as u64 + n,
                Arc::clone(&self.shared),
            ));
        }
        // The dead thread may lag its note while the panic unwinds;
        // sweep whatever has finished by now (the rest on a later call).
        let mut i = 0;
        while i < workers.len() {
            if workers[i].is_finished() {
                let dead = workers.swap_remove(i);
                let _ = dead.join();
            } else {
                i += 1;
            }
        }
    }

    /// Plans `source`, fanning independent defines across the pool.
    /// Returns the caller-thread compile of the program too, so `hybrid`
    /// requests can run it without compiling again.
    ///
    /// With [`PlanConfig::deadline`] set, positions still unanswered at
    /// the deadline are filled with fabricated `Decision::Monitor`
    /// decisions (the degradation ladder) instead of failing the
    /// request; a stalled worker's late real answer still reaches the
    /// store, healing the next request. Without a deadline, only worker
    /// death (immediate) or the defensive [`POOL_REPLY_TIMEOUT`] ends
    /// the wait early, both as distinct errors.
    fn plan(&self, source: &str, config: &PlanConfig) -> Result<PlannedSource, String> {
        // Guard the recursive compile/digest walks before touching them —
        // here and not in the workers, because every worker job's source
        // passed through this method first.
        source_depth_ok(source)?;
        // Repair the pool before dispatch: a worker lost to an earlier
        // request must not shrink capacity for this one.
        self.ensure_workers();
        // Compile once up front: fail fast on syntax errors and learn the
        // define positions to partition.
        let program =
            sct_lang::compile_program(source).map_err(|e| format!("compile error: {e}"))?;
        let positions: Vec<usize> = program
            .top_level
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f, TopForm::Define { .. }))
            .map(|(i, _)| i)
            .collect();
        let chunk_count = self.threads.min(positions.len()).max(1);
        // Round-robin keeps a heavy prefix (helpers first is the common
        // program shape) from landing on one worker.
        let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); chunk_count];
        for (i, pos) in positions.iter().enumerate() {
            chunks[i % chunk_count].push(*pos);
        }
        let source: Arc<str> = Arc::from(source);
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut sent = 0usize;
        let mut debt = QueueDebt {
            gauge: &self.queue_depth,
            outstanding: 0,
        };
        for chunk in chunks.into_iter().filter(|c| !c.is_empty()) {
            self.jobs
                .send(Job {
                    source: Arc::clone(&source),
                    positions: chunk,
                    config: config.clone(),
                    reply: reply_tx.clone(),
                })
                .map_err(|_| "planning pool is gone".to_string())?;
            debt.incur();
            sent += 1;
        }
        drop(reply_tx);
        let mut all: Vec<(usize, FnDecision, bool)> = Vec::new();
        let mut received = 0usize;
        let mut past_deadline = false;
        while received < sent {
            let (timeout, in_grace) = match config.deadline {
                Some(d) => match d.checked_duration_since(Instant::now()) {
                    Some(left) => (left.min(POOL_REPLY_TIMEOUT), false),
                    // Past the deadline, replies already in flight get
                    // one short grace to land: an expired deadline still
                    // honors store hits and the workers' own (fast)
                    // in-pass degradations — fabrication is only for
                    // workers that are truly stuck.
                    None => (DEADLINE_GRACE, true),
                },
                None => (POOL_REPLY_TIMEOUT, false),
            };
            match reply_rx.recv_timeout(timeout) {
                Ok(Ok(slice)) => {
                    all.extend(slice);
                    debt.settle();
                    received += 1;
                }
                Ok(Err(e)) => return Err(e),
                // All remaining reply senders are gone without a reply:
                // a worker died (panicked outside its job guard) holding
                // this request's job. Fail *now* with the real cause —
                // waiting out a timeout would wedge the client for
                // minutes on an already-lost request.
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(format!(
                        "planning worker died mid-job (pool respawns it; \
                         {} lifetime restarts)",
                        self.restarts() + 1
                    ));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if in_grace {
                        past_deadline = true;
                        break;
                    }
                    if config.deadline.is_none() {
                        return Err("planning pool did not answer".to_string());
                    }
                    // The deadline passed during this wait; loop again to
                    // enter the grace window.
                }
            }
        }
        if past_deadline {
            // The degradation ladder's bottom rung: fabricate sound,
            // maximally pessimistic decisions for whatever the workers
            // have not answered. Never persisted (no store call here),
            // so one slow moment cannot pin pessimism under a content
            // key.
            let answered: HashSet<usize> = all.iter().map(|(p, ..)| *p).collect();
            let missing: Vec<usize> = positions
                .iter()
                .copied()
                .filter(|p| !answered.contains(p))
                .collect();
            all.extend(monitor_fallback_decisions(
                &program,
                &missing,
                DEADLINE_REASON,
            ));
        }
        all.sort_by_key(|(pos, _, _)| *pos);
        let mut plan = EnforcementPlan::new();
        let mut stats = IncrementalStats::default();
        for (_, decision, hit) in all {
            stats.defines.push((decision.name.clone(), hit));
            plan.decisions.push(decision);
        }
        Ok(PlannedSource {
            program,
            plan,
            stats,
        })
    }
}

/// The daemon's metric handles, registered once at construction on the
/// server's **own** [`Registry`] (never the process-global one: the test
/// suite runs many servers in one process, and their counts must not
/// bleed into each other). Every former `Counters` field is now a
/// lock-free atomic; the `stats` op and the `metrics` op read the *same*
/// atomics, so their numbers reconcile exactly by construction.
struct ServerMetrics {
    /// The server's registry — also handed to the cache ([`CacheObs`])
    /// and the planner ([`PlanObs`]), and published to by the VM after
    /// each execution, so one snapshot covers every layer.
    registry: Arc<Registry>,
    plan: Counter,
    run: Counter,
    hybrid: Counter,
    stats: Counter,
    metrics: Counter,
    errors: Counter,
    /// Requests refused at admission (queue or per-client bound).
    shed: Counter,
    /// Requests whose deadline fired — a degraded plan or a stopped run.
    deadline_exceeded: Counter,
    /// Aggregate run-time plan effect across every `run`/`hybrid`
    /// execution this daemon served: calls the static proofs absorbed vs.
    /// calls the residual monitor still guarded.
    static_skips: Counter,
    monitored_calls: Counter,
    /// Aggregate polymorphic-inline-cache traffic on generic call sites
    /// across every `run`/`hybrid` execution.
    pic_hits: Counter,
    pic_misses: Counter,
    pic_invalidations: Counter,
    /// Lifetime planning-worker respawns (shared with the pool).
    worker_restarts: Counter,
    /// Expensive requests currently admitted (mirrors the admission
    /// control's own atomic).
    inflight: Gauge,
    /// Planning jobs currently queued or running in the worker pool.
    queue_depth: Gauge,
    /// Per-op request latency, microseconds, whole-request (parse to
    /// response).
    latency_plan: Histogram,
    latency_run: Histogram,
    latency_hybrid: Histogram,
    latency_stats: Histogram,
    latency_metrics: Histogram,
}

impl ServerMetrics {
    fn register(registry: Arc<Registry>) -> ServerMetrics {
        ServerMetrics {
            plan: registry.counter("serve.requests.plan"),
            run: registry.counter("serve.requests.run"),
            hybrid: registry.counter("serve.requests.hybrid"),
            stats: registry.counter("serve.requests.stats"),
            metrics: registry.counter("serve.requests.metrics"),
            errors: registry.counter("serve.errors"),
            shed: registry.counter("serve.shed"),
            deadline_exceeded: registry.counter("serve.deadline_exceeded"),
            static_skips: registry.counter("serve.static_skips"),
            monitored_calls: registry.counter("serve.monitored_calls"),
            pic_hits: registry.counter("serve.pic_hits"),
            pic_misses: registry.counter("serve.pic_misses"),
            pic_invalidations: registry.counter("serve.pic_invalidations"),
            worker_restarts: registry.counter("serve.worker_restarts"),
            inflight: registry.gauge("serve.inflight"),
            queue_depth: registry.gauge("serve.queue_depth"),
            latency_plan: registry.histogram("serve.latency.plan_us"),
            latency_run: registry.histogram("serve.latency.run_us"),
            latency_hybrid: registry.histogram("serve.latency.hybrid_us"),
            latency_stats: registry.histogram("serve.latency.stats_us"),
            latency_metrics: registry.histogram("serve.latency.metrics_us"),
            registry,
        }
    }

    /// The latency histogram for a known op (`None` for `shutdown`,
    /// unknown ops, and unparseable lines).
    fn latency_for(&self, op: &str) -> Option<&Histogram> {
        match op {
            "plan" => Some(&self.latency_plan),
            "run" => Some(&self.latency_run),
            "hybrid" => Some(&self.latency_hybrid),
            "stats" => Some(&self.latency_stats),
            "metrics" => Some(&self.latency_metrics),
            _ => None,
        }
    }
}

/// How many of `plan`'s decisions were degraded to `Monitor` by a
/// deadline (directly by a worker's in-pass check or fabricated for a
/// stalled worker — both carry [`DEADLINE_REASON`]).
fn degraded_count(plan: &EnforcementPlan) -> usize {
    plan.decisions
        .iter()
        .filter(
            |d| matches!(&d.decision, Decision::Monitor { reason } if reason.starts_with(DEADLINE_REASON)),
        )
        .count()
}

/// Per-thread compiled-IR cache: `sct-ir` compilation is paid once per
/// distinct `(source, plan?)` and the image is reused across requests on
/// the same connection (stdio serving is single-threaded, so the daemon's
/// primary mode gets full reuse). Thread-local because the IR holds
/// `Rc`-based AST nodes; bounded so an adversarial client cycling sources
/// cannot grow the daemon without limit. Soundness: for a fixed source the
/// enforcement plan is deterministic (warm and cold planning are
/// structurally equal, pinned by `crates/cache/tests/robustness.rs`), so
/// a cached plan-directed image bakes in exactly the decisions a fresh
/// compile would.
const IR_CACHE_CAP: usize = 32;

/// Cache entry: the exact source and plan fingerprint (collision guards
/// for the 64-bit key) plus the compiled image.
type IrCacheMap = HashMap<(u64, bool), (String, u64, Rc<CompiledProgram>)>;

thread_local! {
    static IR_CACHE: RefCell<IrCacheMap> =
        RefCell::new(HashMap::new());
}

/// Returns the compiled IR for `source` under `plan`, reusing the
/// per-thread cache. The boolean is true on a cache hit (surfaced to
/// clients as `"compiled":"cached"`).
///
/// The key covers the plan's *decisions fingerprint*, not just its
/// presence: for the same source, a loaded daemon can plan `Monitor`
/// (budget truncation) where an idle one plans `Static`, and pairing an
/// image compiled against one plan with a machine configured with the
/// other is rejected by `Machine::with_code`'s plan-token check — the
/// cache must therefore never conflate them.
fn compiled_for(
    source: &str,
    program: &Program,
    plan: Option<&EnforcementPlan>,
) -> (Rc<CompiledProgram>, bool) {
    let plan_fp = plan.map_or(0, EnforcementPlan::decisions_fingerprint);
    let mut h = DefaultHasher::new();
    source.hash(&mut h);
    plan_fp.hash(&mut h);
    let key = (h.finish(), plan.is_some());
    IR_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((src, fp, code)) = cache.get(&key) {
            if src == source && *fp == plan_fp {
                return (code.clone(), true);
            }
        }
        let code = Rc::new(sct_ir::compile(program, plan));
        if cache.len() >= IR_CACHE_CAP {
            // Evict one arbitrary entry; clearing everything would
            // periodically discard the whole warm set under a working
            // set one larger than the cap.
            if let Some(&victim) = cache.keys().next() {
                cache.remove(&victim);
            }
        }
        cache.insert(key, (source.to_string(), plan_fp, code.clone()));
        (code, false)
    })
}

/// The daemon state: worker pool, shared decision store, metrics. One
/// `Server` serves any number of sequential or concurrent clients; see
/// the module docs for the protocol.
pub struct Server {
    pool: PlanPool,
    store: Arc<Mutex<StoreKind>>,
    metrics: ServerMetrics,
    cache_dir: Option<PathBuf>,
    deadline_ms: Option<u64>,
    max_queue: usize,
    max_inflight_per_client: usize,
    /// Expensive requests currently admitted, across all clients.
    inflight: AtomicUsize,
    /// Admitted-request count per client bucket.
    per_client: Mutex<HashMap<String, usize>>,
    started: Instant,
    quitting: AtomicBool,
}

/// RAII token for one admitted expensive request: dropping it releases
/// the global and per-client in-flight slots, however the request ends
/// (success, error, or panic unwinding through the client thread).
struct Admitted<'a> {
    server: &'a Server,
    client: String,
}

impl Drop for Admitted<'_> {
    fn drop(&mut self) {
        self.server.inflight.fetch_sub(1, Ordering::SeqCst);
        self.server.metrics.inflight.dec();
        let mut per = lock_or_recover(&self.server.per_client);
        match per.get_mut(&self.client) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                per.remove(&self.client);
            }
        }
    }
}

/// What [`Server::handle_line`] produced: at most one response line, plus
/// whether the daemon was asked to shut down.
#[derive(Debug, Clone)]
pub struct LineOutcome {
    /// The response to write back (`None` for blank input lines).
    pub response: Option<String>,
    /// True after a `shutdown` request: stop reading.
    pub quit: bool,
}

impl Server {
    /// Builds the daemon state: opens (or creates) the cache directory
    /// when one is configured and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when `cache_dir` cannot be created.
    pub fn new(options: ServeOptions) -> io::Result<Server> {
        // The server's own registry — every layer below (cache, planner,
        // VM publishes) reports into it, so one `metrics` snapshot covers
        // the whole daemon, and `stats` reads the same atomics.
        let registry = Arc::new(Registry::new());
        let metrics = ServerMetrics::register(Arc::clone(&registry));
        let store = match &options.cache_dir {
            Some(dir) => {
                StoreKind::Disk(DiskCache::open(dir)?.with_obs(CacheObs::register(&registry)))
            }
            None => StoreKind::Mem(MemStore::new().with_obs(CacheObs::register(&registry))),
        };
        let store = Arc::new(Mutex::new(store));
        let threads = if options.threads == 0 {
            thread::available_parallelism().map_or(2, |n| n.get().min(8))
        } else {
            options.threads
        };
        Ok(Server {
            pool: PlanPool::new(
                threads,
                Arc::clone(&store),
                metrics.worker_restarts.clone(),
                metrics.queue_depth.clone(),
            ),
            store,
            metrics,
            cache_dir: options.cache_dir,
            deadline_ms: options.deadline_ms,
            max_queue: options.max_queue,
            max_inflight_per_client: options.max_inflight_per_client,
            inflight: AtomicUsize::new(0),
            per_client: Mutex::new(HashMap::new()),
            started: Instant::now(),
            quitting: AtomicBool::new(false),
        })
    }

    /// Number of planning worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads
    }

    /// Admission control for expensive requests. Checks the global bound
    /// first (it protects the process), then the per-client quota, under
    /// one lock so concurrent admissions cannot both sneak past a bound.
    fn admit(&self, client: &str) -> Result<Admitted<'_>, String> {
        let mut per = lock_or_recover(&self.per_client);
        let inflight = self.inflight.load(Ordering::SeqCst);
        if self.max_queue > 0 && inflight >= self.max_queue {
            return Err(format!(
                "overloaded: {inflight} requests in flight (max {}); retry later",
                self.max_queue
            ));
        }
        let mine = per.get(client).copied().unwrap_or(0);
        if self.max_inflight_per_client > 0 && mine >= self.max_inflight_per_client {
            return Err(format!(
                "client {client:?} quota exceeded: {mine} requests in flight (max {})",
                self.max_inflight_per_client
            ));
        }
        *per.entry(client.to_string()).or_insert(0) += 1;
        self.inflight.fetch_add(1, Ordering::SeqCst);
        self.metrics.inflight.inc();
        Ok(Admitted {
            server: self,
            client: client.to_string(),
        })
    }

    /// The wall-clock budget for one request: the server-wide option,
    /// the request's own `"deadline_ms"`, or (when both are set) the
    /// smaller — a client may tighten the server bound, never loosen it.
    fn request_deadline(&self, req: &Json) -> Option<Instant> {
        let from_req = req.get("deadline_ms").and_then(Json::as_u64);
        let ms = match (self.deadline_ms, from_req) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        ms.map(|ms| Instant::now() + Duration::from_millis(ms))
    }

    /// Handles one protocol line. Never panics on malformed input; blank
    /// lines are ignored (keep-alive friendly). Equivalent to
    /// [`Server::handle_line_as`] with the `"local"` client identity.
    pub fn handle_line(&self, line: &str) -> LineOutcome {
        self.handle_line_as("local", line)
    }

    /// [`Server::handle_line`] on behalf of a named client connection:
    /// `client` is the quota bucket for
    /// [`ServeOptions::max_inflight_per_client`] unless the request
    /// carries its own `"client"` field.
    pub fn handle_line_as(&self, client: &str, line: &str) -> LineOutcome {
        let line = line.trim();
        if line.is_empty() {
            return LineOutcome {
                response: None,
                quit: false,
            };
        }
        let (response, quit) = match parse(line) {
            Ok(req) => self.dispatch(&req, client),
            Err(e) => {
                self.metrics.errors.inc();
                (
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(false)),
                        // The protocol promises "op" on every response;
                        // an unparseable line has no op to echo.
                        ("op".into(), Json::Null),
                        ("error".into(), Json::str(format!("bad request: {e}"))),
                    ]),
                    false,
                )
            }
        };
        LineOutcome {
            response: Some(response.to_string()),
            quit,
        }
    }

    fn dispatch(&self, req: &Json, client: &str) -> (Json, bool) {
        let op = req.get("op").and_then(Json::as_str).unwrap_or("");
        let id = req.get("id").cloned();
        let started = Instant::now();
        // One root span per request. Ids are always allocated (the trace
        // id is echoed in the response either way); events only reach the
        // sink when `--trace-out` armed it.
        let span = trace::Span::root("serve.request", &[("op", op), ("client", client)]);
        let mut quit = false;
        let mut members: Vec<(String, Json)> = Vec::new();
        match op {
            "plan" | "run" | "hybrid" => {
                // Admission first: a shed request is accounted once,
                // under `shed`, and never reaches the pool or a machine.
                let bucket = req.get("client").and_then(Json::as_str).unwrap_or(client);
                match self.admit(bucket) {
                    Ok(_slot) => {
                        match op {
                            "plan" => self.metrics.plan.inc(),
                            "run" => self.metrics.run.inc(),
                            _ => self.metrics.hybrid.inc(),
                        }
                        members = match op {
                            "plan" => self.op_plan(req, &span),
                            "run" => self.op_run(req, false, &span),
                            _ => self.op_run(req, true, &span),
                        };
                    }
                    Err(reason) => {
                        self.metrics.shed.inc();
                        span.event("shed", &[("reason", &reason)]);
                        members.push(("ok".into(), Json::Bool(false)));
                        members.push(("error".into(), Json::str(reason)));
                        members.push(("shed".into(), Json::Bool(true)));
                    }
                }
            }
            "stats" => {
                self.metrics.stats.inc();
                members = self.op_stats();
            }
            "metrics" => {
                self.metrics.metrics.inc();
                members = self.op_metrics(req);
            }
            "shutdown" => {
                self.quitting.store(true, Ordering::SeqCst);
                members.push(("ok".into(), Json::Bool(true)));
                quit = true;
            }
            other => {
                self.metrics.errors.inc();
                members.push(("ok".into(), Json::Bool(false)));
                members.push((
                    "error".into(),
                    Json::str(format!(
                        "unknown op {other:?} (expected plan|run|hybrid|stats|metrics|shutdown)"
                    )),
                ));
            }
        }
        let mut full = vec![(
            "op".into(),
            if op.is_empty() {
                Json::Null
            } else {
                Json::str(op)
            },
        )];
        if let Some(id) = id {
            full.push(("id".into(), id));
        }
        full.extend(members);
        // Per-request correlation: the response always names its trace id
        // so a client can find this request's spans in the JSONL sink.
        full.push(("trace".into(), Json::str(span.trace_hex())));
        // Normalize: "ok" first for human eyeballs on the wire.
        full.sort_by_key(|(k, _)| k != "ok");
        if let Some(h) = self.metrics.latency_for(op) {
            h.record_elapsed_us(started);
        }
        (Json::Obj(full), quit)
    }

    fn plan_source(&self, req: &Json, deadline: Option<Instant>) -> Result<PlannedSource, String> {
        let source = req
            .get("source")
            .and_then(Json::as_str)
            .ok_or("missing \"source\"")?;
        let config = PlanConfig {
            deadline,
            obs: PlanObs::registered(Arc::clone(&self.metrics.registry)),
            ..PlanConfig::default()
        };
        self.pool.plan(source, &config)
    }

    /// Accounts a deadline-degraded plan and returns how many of its
    /// decisions were degraded (reported to clients as `"degraded"`).
    fn note_degraded(&self, plan: &EnforcementPlan) -> usize {
        let degraded = degraded_count(plan);
        if degraded > 0 {
            self.metrics.deadline_exceeded.inc();
        }
        degraded
    }

    fn op_plan(&self, req: &Json, span: &trace::Span) -> Vec<(String, Json)> {
        let plan_span = span.child("plan", &[]);
        let planned = self.plan_source(req, self.request_deadline(req));
        drop(plan_span);
        match planned {
            Ok(planned) => {
                let degraded = self.note_degraded(&planned.plan);
                let plan_doc = parse(&planned.plan.to_json()).expect("plan JSON is well-formed");
                vec![
                    ("ok".into(), Json::Bool(true)),
                    ("plan".into(), plan_doc),
                    ("cache".into(), cache_json(&planned.stats)),
                    ("defines".into(), defines_json(&planned.stats)),
                    ("degraded".into(), Json::Int(degraded as i64)),
                ]
            }
            Err(e) => fail(&e),
        }
    }

    /// `run` (standard semantics) and `hybrid` (plan + monitored run with
    /// the static fast path) share everything but the planning step.
    fn op_run(&self, req: &Json, hybrid: bool, span: &trace::Span) -> Vec<(String, Json)> {
        let Some(source) = req.get("source").and_then(Json::as_str) else {
            return fail("missing \"source\"");
        };
        let fuel = req.get("fuel").and_then(Json::as_u64);
        // One deadline spans the whole request: planning spends from the
        // same budget the execution finishes on.
        let deadline = self.request_deadline(req);
        // `hybrid` plans first (which compiles on this thread); plain `run`
        // compiles here. Either way the program is compiled exactly once
        // per request on the request thread.
        let (program, planned) = if hybrid {
            let plan_span = span.child("plan", &[]);
            let planned = self.plan_source(req, deadline);
            drop(plan_span);
            match planned {
                Ok(planned) => {
                    self.note_degraded(&planned.plan);
                    (planned.program, Some((planned.plan, planned.stats)))
                }
                Err(e) => return fail(&e),
            }
        } else {
            if let Err(e) = source_depth_ok(source) {
                return fail(&e);
            }
            match sct_lang::compile_program(source) {
                Ok(p) => (p, None),
                Err(e) => return fail(&format!("compile error: {e}")),
            }
        };
        let mut extra: Vec<(String, Json)> = Vec::new();
        let config = match &planned {
            Some((plan, stats)) => {
                // Per-request warm-plan observability: store hits/misses
                // plus the warm bit (a fully warm plan did zero symbolic
                // exploration on this request).
                extra.push(("cache".into(), cache_json(stats)));
                extra.push((
                    "plan_summary".into(),
                    Json::Obj(vec![
                        ("static".into(), Json::Int(plan.count("static") as i64)),
                        ("monitor".into(), Json::Int(plan.count("monitor") as i64)),
                        ("refuted".into(), Json::Int(plan.count("refuted") as i64)),
                    ]),
                ));
                extra.push(("degraded".into(), Json::Int(degraded_count(plan) as i64)));
                if let Some(err) = crate::refutation_error(plan) {
                    let blame = match &err {
                        EvalError::Sc(info) => info.blame.clone(),
                        _ => None,
                    };
                    let mut out = fail(&format!("{err} (statically refuted before running)"));
                    out.push(("refuted".into(), Json::Bool(true)));
                    out.push(("blame".into(), opt_str(blame.as_deref())));
                    out.extend(extra);
                    return out;
                }
                MachineConfig {
                    mode: SemanticsMode::Monitored,
                    fuel,
                    deadline,
                    plan: Some(Rc::new(plan.clone())),
                    ..MachineConfig::monitored(TableStrategy::Imperative)
                }
            }
            None => MachineConfig {
                fuel,
                deadline,
                ..MachineConfig::standard()
            },
        };
        let (code, ir_cached) = compiled_for(source, &program, config.plan.as_deref());
        let mut machine = Machine::with_code(&program, code, config);
        let exec_span = span.child("execute", &[]);
        let result = machine.run();
        drop(exec_span);
        self.metrics.static_skips.add(machine.stats.static_skips);
        self.metrics
            .monitored_calls
            .add(machine.stats.monitored_calls);
        self.metrics.pic_hits.add(machine.stats.pic_hits);
        self.metrics.pic_misses.add(machine.stats.pic_misses);
        self.metrics
            .pic_invalidations
            .add(machine.stats.pic_invalidations);
        if matches!(result, Err(EvalError::Deadline)) {
            self.metrics.deadline_exceeded.inc();
        }
        // The full per-run VM statistics land in the registry too, so a
        // `metrics` snapshot shows aggregate `vm.*` across every
        // execution this daemon served.
        machine.stats.publish(&self.metrics.registry);
        let mut out: Vec<(String, Json)> = Vec::new();
        match result {
            Ok(v) => {
                out.push(("ok".into(), Json::Bool(true)));
                out.push(("value".into(), Json::str(v.to_write_string())));
            }
            Err(e) => {
                let blame = match &e {
                    EvalError::Sc(info) => info.blame.clone(),
                    _ => None,
                };
                if let EvalError::Sc(info) = &e {
                    // The monitor's verdict as a trace event, carrying the
                    // call-sequence witness that convicted the function.
                    span.event(
                        "monitor.blame",
                        &[
                            ("function", &info.function),
                            ("blame", blame.as_deref().unwrap_or("whole-program")),
                            ("witness", &info.violation.to_string()),
                        ],
                    );
                }
                out.push(("ok".into(), Json::Bool(false)));
                out.push(("error".into(), Json::str(e.to_string())));
                out.push(("blame".into(), opt_str(blame.as_deref())));
                out.push(("refuted".into(), Json::Bool(false)));
            }
        }
        out.push(("output".into(), Json::str(&machine.output)));
        out.push(("stats".into(), stats_json(&machine.stats)));
        out.push((
            "compiled".into(),
            Json::str(if ir_cached { "cached" } else { "fresh" }),
        ));
        out.extend(extra);
        out
    }

    fn op_stats(&self) -> Vec<(String, Json)> {
        let m = &self.metrics;
        let traffic = lock_or_recover(&self.store).traffic();
        let ci = |c: &Counter| Json::Int(c.get().min(i64::MAX as u64) as i64);
        vec![
            ("ok".into(), Json::Bool(true)),
            (
                "requests".into(),
                Json::Obj(vec![
                    ("plan".into(), ci(&m.plan)),
                    ("run".into(), ci(&m.run)),
                    ("hybrid".into(), ci(&m.hybrid)),
                    ("stats".into(), ci(&m.stats)),
                    ("metrics".into(), ci(&m.metrics)),
                    ("errors".into(), ci(&m.errors)),
                    ("shed".into(), ci(&m.shed)),
                    ("deadline_exceeded".into(), ci(&m.deadline_exceeded)),
                ]),
            ),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Int(traffic.hits as i64)),
                    ("misses".into(), Json::Int(traffic.misses as i64)),
                    ("rejected".into(), Json::Int(traffic.rejected as i64)),
                    ("stores".into(), Json::Int(traffic.stores as i64)),
                    ("quarantined".into(), Json::Int(traffic.quarantined as i64)),
                ]),
            ),
            (
                // Aggregate run-time plan effect, mirroring the CLI's
                // `; plan: S static skips, M monitored calls` line.
                "plan".into(),
                Json::Obj(vec![
                    ("static_skips".into(), ci(&m.static_skips)),
                    ("monitored_calls".into(), ci(&m.monitored_calls)),
                ]),
            ),
            (
                // Aggregate inline-cache traffic, mirroring the CLI's
                // `; pic: H hits, M misses, I invalidations` line.
                "pic".into(),
                Json::Obj(vec![
                    ("hits".into(), ci(&m.pic_hits)),
                    ("misses".into(), ci(&m.pic_misses)),
                    ("invalidations".into(), ci(&m.pic_invalidations)),
                ]),
            ),
            (
                "cache_dir".into(),
                opt_str(self.cache_dir.as_ref().and_then(|p| p.to_str())),
            ),
            ("workers".into(), Json::Int(self.pool.threads as i64)),
            (
                "worker_restarts".into(),
                Json::Int(self.pool.restarts() as i64),
            ),
            (
                "uptime_ms".into(),
                Json::Int(self.started.elapsed().as_millis().min(i64::MAX as u128) as i64),
            ),
            (
                // Per-op request latency summaries from the same
                // histograms the `metrics` op exposes in full.
                "latency".into(),
                Json::Obj(
                    [
                        ("plan", &m.latency_plan),
                        ("run", &m.latency_run),
                        ("hybrid", &m.latency_hybrid),
                        ("stats", &m.latency_stats),
                        ("metrics", &m.latency_metrics),
                    ]
                    .into_iter()
                    .map(|(op, h)| (op.to_string(), latency_json(&h.snapshot())))
                    .collect(),
                ),
            ),
        ]
    }

    /// The `metrics` op: a coherent point-in-time snapshot of the
    /// server's whole registry — every counter, gauge, and histogram
    /// across serve, cache, planner, and VM — as the `sct-obs` JSON
    /// document, or as Prometheus-style text when the request carries
    /// `"format":"prometheus"`.
    fn op_metrics(&self, req: &Json) -> Vec<(String, Json)> {
        let snap = self.metrics.registry.snapshot();
        let mut out = vec![("ok".into(), Json::Bool(true))];
        match req.get("format").and_then(Json::as_str) {
            Some("prometheus") => {
                out.push(("format".into(), Json::str("prometheus")));
                out.push(("text".into(), Json::str(snap.to_prometheus())));
            }
            _ => {
                let doc = parse(&snap.to_json()).expect("snapshot JSON is well-formed");
                out.push(("metrics".into(), doc));
            }
        }
        out
    }
}

fn fail(message: &str) -> Vec<(String, Json)> {
    vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(message)),
    ]
}

fn opt_str(s: Option<&str>) -> Json {
    match s {
        Some(s) => Json::str(s),
        None => Json::Null,
    }
}

/// `{count, p50_us, p90_us, p99_us}` for one latency histogram; the
/// quantile keys are omitted while the histogram is empty.
fn latency_json(snap: &HistogramSnapshot) -> Json {
    let mut members = vec![(
        "count".into(),
        Json::Int(snap.count.min(i64::MAX as u64) as i64),
    )];
    for (key, q) in [("p50_us", 0.50), ("p90_us", 0.90), ("p99_us", 0.99)] {
        if let Some(v) = snap.quantile(q) {
            members.push((key.into(), Json::Int(v.min(i64::MAX as u64) as i64)));
        }
    }
    Json::Obj(members)
}

fn cache_json(stats: &IncrementalStats) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::Int(stats.hits() as i64)),
        ("misses".into(), Json::Int(stats.misses() as i64)),
        // A fully warm request re-verified nothing: every define loaded
        // from the decision store.
        ("warm".into(), Json::Bool(stats.misses() == 0)),
    ])
}

fn defines_json(stats: &IncrementalStats) -> Json {
    Json::Arr(
        stats
            .defines
            .iter()
            .map(|(name, hit)| Json::Arr(vec![Json::str(name), Json::Bool(*hit)]))
            .collect(),
    )
}

fn stats_json(s: &Stats) -> Json {
    Json::Obj(vec![
        ("steps".into(), Json::Int(s.steps as i64)),
        ("applications".into(), Json::Int(s.applications as i64)),
        ("monitored".into(), Json::Int(s.monitored_calls as i64)),
        ("checks".into(), Json::Int(s.checks as i64)),
        ("static_skips".into(), Json::Int(s.static_skips as i64)),
        ("pic_hits".into(), Json::Int(s.pic_hits as i64)),
        ("pic_misses".into(), Json::Int(s.pic_misses as i64)),
        (
            "pic_invalidations".into(),
            Json::Int(s.pic_invalidations as i64),
        ),
        ("max_kont".into(), Json::Int(s.max_kont_depth as i64)),
    ])
}

/// Cap on one request line. The JSON parser's depth guard protects the
/// stack; this protects the heap — without it, a client streaming bytes
/// with no newline would grow the daemon's memory without bound.
const MAX_LINE_BYTES: u64 = 8 * 1024 * 1024;

/// One read attempt's outcome.
enum RequestLine {
    /// A complete line (newline included), lossily decoded.
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]: answer with an error and
    /// close the connection (draining an unbounded line would keep the
    /// daemon busy on the abuser's behalf).
    TooLong,
    /// EOF or a read error: stop reading.
    Eof,
}

/// Reads one `\n`-terminated line as *bytes* and lossily decodes it.
/// `lines()` would error out (and kill the session) on invalid UTF-8;
/// here such a line reaches `handle_line` as replacement-charactered
/// text, fails JSON parsing, and gets the documented `{"ok":false}`
/// response instead.
fn read_request_line<R: BufRead>(reader: &mut R) -> RequestLine {
    let mut bytes = Vec::new();
    // `&mut R` is itself a reader, so `take` borrows rather than consumes.
    let mut limited = io::Read::take(&mut *reader, MAX_LINE_BYTES);
    match limited.read_until(b'\n', &mut bytes) {
        Ok(0) | Err(_) => RequestLine::Eof,
        Ok(n) if n as u64 >= MAX_LINE_BYTES && !bytes.ends_with(b"\n") => RequestLine::TooLong,
        Ok(_) => RequestLine::Line(String::from_utf8_lossy(&bytes).into_owned()),
    }
}

/// The response sent for a [`RequestLine::TooLong`] read.
fn too_long_response() -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::str(format!("request line exceeds {MAX_LINE_BYTES} bytes")),
        ),
    ])
    .to_string()
}

/// Serves one client over stdin/stdout, returning at EOF or `shutdown`.
/// This is `sct serve`'s default mode — the shape scripts and editors
/// pipe into.
///
/// # Errors
///
/// Propagates stdout write failures (a broken pipe ends the session).
pub fn serve_stdio(server: &Server) -> io::Result<()> {
    let stdin = io::stdin();
    let mut reader = stdin.lock();
    let mut stdout = io::stdout().lock();
    loop {
        let line = match read_request_line(&mut reader) {
            RequestLine::Line(line) => line,
            RequestLine::TooLong => {
                writeln!(stdout, "{}", too_long_response())?;
                stdout.flush()?;
                break;
            }
            RequestLine::Eof => break,
        };
        let outcome = server.handle_line_as("stdio", &line);
        if let Some(response) = outcome.response {
            writeln!(stdout, "{response}")?;
            stdout.flush()?;
        }
        if outcome.quit {
            break;
        }
    }
    Ok(())
}

fn serve_client(server: &Server, stream: UnixStream, client: &str) {
    let Ok(read) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read);
    let mut writer = stream;
    loop {
        // Fault-injection site: a read fault drops this one connection —
        // the connection is its own failure domain, the daemon and every
        // other client keep going.
        if sct_faults::io_check("serve.client.read").is_err() {
            break;
        }
        let line = match read_request_line(&mut reader) {
            RequestLine::Line(line) => line,
            RequestLine::TooLong => {
                let _ = writeln!(writer, "{}", too_long_response());
                break;
            }
            RequestLine::Eof => break,
        };
        let outcome = server.handle_line_as(client, &line);
        if let Some(response) = outcome.response {
            if writeln!(writer, "{response}")
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
        }
        if outcome.quit {
            break;
        }
    }
}

/// Binds `path` and serves clients until a `shutdown` request arrives.
/// Each accepted connection gets its own thread; planning from all
/// connections funnels into the shared worker pool, and the persistent
/// store is safe under the concurrency (atomic publishes, content-
/// addressed keys).
///
/// An existing socket file at `path` is removed first (the daemon owns
/// its rendezvous path, and a stale file from a dead daemon would
/// otherwise block every restart).
///
/// On `shutdown`, every open client connection is closed (a blocked read
/// sees EOF) and in-flight requests are allowed to finish before the
/// function returns. One inherent caveat: an in-flight `run` of a
/// non-terminating program with no `fuel` bound cannot be interrupted —
/// monitored (`hybrid`) runs always terminate, but the standard
/// semantics does not, so operators exposing `run` to untrusted clients
/// should require `fuel`.
///
/// # Errors
///
/// Propagates bind errors; per-connection I/O errors only end that
/// connection.
pub fn serve_unix(server: Arc<Server>, path: &std::path::Path) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("sct serve: listening on {}", path.display());
    // Poll accept with a timeout so a `shutdown` from one client stops
    // the accept loop too (not just that client's thread).
    listener.set_nonblocking(true)?;
    // Live connections: the thread plus a stream handle shutdown uses to
    // unblock its read. Finished entries are *joined* each loop iteration
    // — not just dropped — so a long-running daemon neither leaks one fd
    // per past client nor loses track of a client thread that panicked
    // (a daemon bug worth counting, never worth dying for).
    let mut clients: Vec<(thread::JoinHandle<()>, UnixStream)> = Vec::new();
    let mut accept_errors = 0u32;
    let mut next_client = 0u64;
    while !server.quitting.load(Ordering::SeqCst) {
        let mut i = 0;
        while i < clients.len() {
            if clients[i].0.is_finished() {
                let (handle, _) = clients.swap_remove(i);
                if handle.join().is_err() {
                    server.metrics.errors.inc();
                    eprintln!("sct serve: client thread panicked; connection dropped");
                }
            } else {
                i += 1;
            }
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                accept_errors = 0;
                // Fault-injection site: an accept fault drops just this
                // connection (the client sees EOF); the listener lives.
                if sct_faults::io_check("serve.accept").is_err() {
                    continue;
                }
                // The listener's O_NONBLOCK must not leak onto the
                // connection: BSD-derived platforms (macOS) inherit it
                // through accept, which would make every client read fail
                // with WouldBlock. Linux does not inherit; setting it
                // explicitly is correct on both.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let Ok(handle) = stream.try_clone() else {
                    continue;
                };
                let server = Arc::clone(&server);
                let client = format!("conn-{next_client}");
                next_client += 1;
                clients.push((
                    thread::spawn(move || serve_client(&server, stream, &client)),
                    handle,
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                // Transient accept failures (ECONNABORTED, EMFILE while a
                // burst drains) must not take the daemon down; only a
                // persistently failing listener stops the loop.
                accept_errors += 1;
                if accept_errors > 64 {
                    break;
                }
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    // Shutdown: close the *read* half of every client connection so reads
    // blocked in `read_request_line` see EOF — otherwise joining below
    // would hang until every idle client chose to disconnect. The write
    // half stays open so a response to an in-flight request still drains.
    for (_, stream) in &clients {
        let _ = stream.shutdown(std::net::Shutdown::Read);
    }
    for (handle, _) in clients {
        let _ = handle.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServeOptions {
            threads: 2,
            ..ServeOptions::default()
        })
        .unwrap()
    }

    fn ok_line(s: &Server, req: &str) -> Json {
        let out = s.handle_line(req).response.unwrap();
        parse(&out).unwrap_or_else(|e| panic!("bad response {out}: {e}"))
    }

    #[test]
    fn plan_twice_hits_warm_store() {
        let s = server();
        let req = r#"{"op":"plan","source":"(define (inc x) (+ x 1)) (define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i))))"}"#;
        let first = ok_line(&s, req);
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        let c = first.get("cache").unwrap();
        assert_eq!(c.get("hits").and_then(Json::as_i64), Some(0));
        assert_eq!(c.get("misses").and_then(Json::as_i64), Some(2));
        let second = ok_line(&s, req);
        let c = second.get("cache").unwrap();
        assert_eq!(c.get("hits").and_then(Json::as_i64), Some(2));
        assert_eq!(c.get("misses").and_then(Json::as_i64), Some(0));
        // The plan payload is the sct-plan/1 document.
        let doc = second.get("plan").unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("sct-plan/1"));
    }

    #[test]
    fn hybrid_runs_and_reports_skips() {
        let s = server();
        let out = ok_line(
            &s,
            r#"{"op":"hybrid","id":41,"source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i)))) (sum 100 0)"}"#,
        );
        assert_eq!(out.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(out.get("id").and_then(Json::as_i64), Some(41));
        assert_eq!(out.get("value").and_then(Json::as_str), Some("5050"));
        let stats = out.get("stats").unwrap();
        assert_eq!(stats.get("checks").and_then(Json::as_i64), Some(0));
        assert!(stats.get("static_skips").and_then(Json::as_i64).unwrap() > 0);
    }

    #[test]
    fn hybrid_refutes_eagerly_with_blame() {
        let s = server();
        let out = ok_line(
            &s,
            r#"{"op":"hybrid","source":"(define f (terminating/c (lambda (x) (f x)) \"my-party\")) (f 1)"}"#,
        );
        assert_eq!(out.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(out.get("refuted"), Some(&Json::Bool(true)));
        assert_eq!(out.get("blame").and_then(Json::as_str), Some("my-party"));
    }

    #[test]
    fn run_reports_dynamic_blame() {
        let s = server();
        let out = ok_line(
            &s,
            r#"{"op":"run","source":"(define f (terminating/c (lambda (x) (f x)) \"p\")) (f 1)"}"#,
        );
        assert_eq!(out.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(out.get("blame").and_then(Json::as_str), Some("p"));
        assert_eq!(out.get("refuted"), Some(&Json::Bool(false)));
    }

    #[test]
    fn bad_lines_do_not_kill_the_session() {
        let s = server();
        for bad in ["garbage", "{\"op\":\"nope\"}", "{\"op\":\"plan\"}"] {
            let out = ok_line(&s, bad);
            assert_eq!(out.get("ok"), Some(&Json::Bool(false)), "{bad}");
        }
        // Still serving afterwards.
        let out = ok_line(&s, r#"{"op":"stats"}"#);
        assert_eq!(out.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            out.get("requests")
                .and_then(|r| r.get("errors"))
                .and_then(Json::as_i64),
            Some(2)
        );
    }

    #[test]
    fn depth_guard_survives_comment_hidden_closers() {
        // Close-brackets inside a `;` line comment are invisible to the
        // lexer but once drove the guard's tally negative, masking the
        // real nesting that follows — a reproduced daemon abort.
        let s = server();
        let depth = 200_000;
        let source = format!(
            ";{}\\n{}1{}",
            ")".repeat(depth),
            "(".repeat(depth),
            ")".repeat(depth)
        );
        let out = ok_line(&s, &format!(r#"{{"op":"plan","source":"{source}"}}"#));
        assert_eq!(out.get("ok"), Some(&Json::Bool(false)), "{out:?}");
        assert!(
            out.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("nesting depth"),
            "{out:?}"
        );
        let out = ok_line(&s, r#"{"op":"stats"}"#);
        assert_eq!(out.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn deeply_nested_source_is_rejected_not_fatal() {
        // The recursive reader/resolver/digest walks would overflow the
        // stack (an abort) on pathological nesting; the daemon must
        // reject such sources up front and keep serving.
        let s = server();
        let depth = 200_000;
        let bomb = format!(
            r#"{{"op":"plan","source":"{}1{}"}}"#,
            "(".repeat(depth),
            ")".repeat(depth)
        );
        for op in ["plan", "run", "hybrid"] {
            let req = bomb.replace("\"plan\"", &format!("{op:?}"));
            let out = ok_line(&s, &req);
            assert_eq!(out.get("ok"), Some(&Json::Bool(false)), "{op}");
            assert!(
                out.get("error")
                    .and_then(Json::as_str)
                    .unwrap()
                    .contains("nesting depth"),
                "{op}: {out:?}"
            );
        }
        // Still alive and serving.
        let out = ok_line(&s, r#"{"op":"stats"}"#);
        assert_eq!(out.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn admission_bounds_global_then_per_client() {
        let s = Server::new(ServeOptions {
            threads: 1,
            max_queue: 2,
            max_inflight_per_client: 1,
            ..ServeOptions::default()
        })
        .unwrap();
        let alice = s.admit("alice").unwrap();
        let _bob = s.admit("bob").unwrap();
        // Global bound fires first: even a fresh client is refused.
        let e = s.admit("carol").err().unwrap();
        assert!(e.contains("overloaded"), "{e}");
        drop(alice);
        // Below the global bound the per-client quota still holds…
        let e = s.admit("bob").err().unwrap();
        assert!(e.contains("quota"), "{e}");
        // …and releasing is per-client.
        let _alice = s.admit("alice").unwrap();
    }

    #[test]
    fn shed_response_is_well_formed_and_counted() {
        let s = Server::new(ServeOptions {
            threads: 1,
            max_queue: 1,
            ..ServeOptions::default()
        })
        .unwrap();
        // Occupy the only slot, as a concurrent in-flight request would.
        let _slot = s.admit("other").unwrap();
        let out = ok_line(
            &s,
            r#"{"op":"hybrid","id":9,"source":"(define (f x) x) (f 1)"}"#,
        );
        assert_eq!(out.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(out.get("shed"), Some(&Json::Bool(true)));
        assert_eq!(out.get("id").and_then(Json::as_i64), Some(9));
        assert!(
            out.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("overloaded"),
            "{out:?}"
        );
        drop(_slot);
        // The slot freed: the same request now succeeds, and the stats
        // carry the shed (not an error, not a hybrid).
        let out = ok_line(
            &s,
            r#"{"op":"hybrid","id":9,"source":"(define (f x) x) (f 1)"}"#,
        );
        assert_eq!(out.get("ok"), Some(&Json::Bool(true)));
        let stats = ok_line(&s, r#"{"op":"stats"}"#);
        let req = stats.get("requests").unwrap();
        assert_eq!(req.get("shed").and_then(Json::as_i64), Some(1));
        assert_eq!(req.get("hybrid").and_then(Json::as_i64), Some(1));
        assert_eq!(req.get("errors").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn expired_deadline_degrades_plan_to_monitor_not_error() {
        let s = server();
        let src = "(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i))))";
        // deadline_ms 0: already expired when planning starts. The
        // request still succeeds — degraded, never refused.
        let out = ok_line(
            &s,
            &format!(r#"{{"op":"plan","deadline_ms":0,"source":"{src}"}}"#),
        );
        assert_eq!(out.get("ok"), Some(&Json::Bool(true)), "{out:?}");
        assert_eq!(out.get("degraded").and_then(Json::as_i64), Some(1));
        let doc = out.get("plan").unwrap().to_string();
        assert!(doc.contains("monitor"), "{doc}");
        assert!(!doc.contains("static"), "degraded must never be Static");
        // Nothing was persisted: the undegraded replay is a miss, plans
        // Static, and only *its* decision lands in the store.
        let out = ok_line(&s, &format!(r#"{{"op":"plan","source":"{src}"}}"#));
        let c = out.get("cache").unwrap();
        assert_eq!(c.get("hits").and_then(Json::as_i64), Some(0), "{out:?}");
        assert_eq!(c.get("misses").and_then(Json::as_i64), Some(1));
        assert_eq!(out.get("degraded").and_then(Json::as_i64), Some(0));
        assert!(out.get("plan").unwrap().to_string().contains("static"));
        // Store hits are honored past the deadline: replaying with the
        // expired deadline now hits warm and stays Static.
        let out = ok_line(
            &s,
            &format!(r#"{{"op":"plan","deadline_ms":0,"source":"{src}"}}"#),
        );
        let c = out.get("cache").unwrap();
        assert_eq!(c.get("hits").and_then(Json::as_i64), Some(1), "{out:?}");
        assert_eq!(out.get("degraded").and_then(Json::as_i64), Some(0));
        let stats = ok_line(&s, r#"{"op":"stats"}"#);
        assert_eq!(
            stats
                .get("requests")
                .and_then(|r| r.get("deadline_exceeded"))
                .and_then(Json::as_i64),
            Some(1)
        );
    }

    #[test]
    fn run_deadline_stops_unfueled_divergence() {
        let s = server();
        let started = Instant::now();
        let out = ok_line(
            &s,
            r#"{"op":"run","deadline_ms":100,"source":"(define (spin x) (spin x)) (spin 1)"}"#,
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "deadline must bound the request, took {:?}",
            started.elapsed()
        );
        assert_eq!(out.get("ok"), Some(&Json::Bool(false)));
        assert!(
            out.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("deadline exceeded"),
            "{out:?}"
        );
        let stats = ok_line(&s, r#"{"op":"stats"}"#);
        assert_eq!(
            stats
                .get("requests")
                .and_then(|r| r.get("deadline_exceeded"))
                .and_then(Json::as_i64),
            Some(1)
        );
    }

    #[test]
    fn server_wide_deadline_caps_request_deadline() {
        let s = Server::new(ServeOptions {
            threads: 1,
            deadline_ms: Some(0),
            ..ServeOptions::default()
        })
        .unwrap();
        // The request asks for an hour; the server bound of 0 wins, so
        // planning degrades immediately.
        let out = ok_line(
            &s,
            r#"{"op":"plan","deadline_ms":3600000,"source":"(define (id x) x)"}"#,
        );
        assert_eq!(out.get("ok"), Some(&Json::Bool(true)), "{out:?}");
        assert_eq!(out.get("degraded").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn shutdown_quits() {
        let s = server();
        let outcome = s.handle_line(r#"{"op":"shutdown"}"#);
        assert!(outcome.quit);
        assert!(outcome.response.unwrap().contains("\"ok\":true"));
        assert!(s.handle_line("").response.is_none());
    }

    /// The acceptance criterion: `stats` and `metrics` read the same
    /// atomics, so a snapshot taken on a quiet daemon reconciles with
    /// the `stats` counters *exactly* — not approximately.
    #[test]
    fn metrics_snapshot_reconciles_with_stats_counters() {
        let s = server();
        ok_line(
            &s,
            r#"{"op":"hybrid","source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i)))) (sum 50 0)"}"#,
        );
        ok_line(&s, r#"{"op":"plan","source":"(define (id x) x)"}"#);
        ok_line(&s, "definitely not json");
        let stats = ok_line(&s, r#"{"op":"stats"}"#);
        let snap = ok_line(&s, r#"{"op":"metrics"}"#);
        assert_eq!(snap.get("ok"), Some(&Json::Bool(true)), "{snap:?}");
        let m = snap.get("metrics").unwrap();
        let counters = m.get("counters").unwrap();
        let counter = |name: &str| counters.get(name).and_then(Json::as_i64).unwrap_or(0);
        let req = stats.get("requests").unwrap();
        let stat = |obj: &Json, name: &str| obj.get(name).and_then(Json::as_i64).unwrap();
        assert_eq!(counter("serve.requests.plan"), stat(req, "plan"));
        assert_eq!(counter("serve.requests.hybrid"), stat(req, "hybrid"));
        assert_eq!(counter("serve.requests.stats"), stat(req, "stats"));
        assert_eq!(counter("serve.errors"), stat(req, "errors"));
        assert_eq!(counter("serve.shed"), stat(req, "shed"));
        let plan = stats.get("plan").unwrap();
        assert_eq!(counter("serve.static_skips"), stat(plan, "static_skips"));
        assert_eq!(
            counter("serve.monitored_calls"),
            stat(plan, "monitored_calls")
        );
        let cache = stats.get("cache").unwrap();
        assert_eq!(counter("cache.hits"), stat(cache, "hits"));
        assert_eq!(counter("cache.misses"), stat(cache, "misses"));
        assert_eq!(counter("cache.stores"), stat(cache, "stores"));
        // The VM published into the same registry: the hybrid run above
        // took steps and skipped checks statically.
        assert!(counter("vm.runs") >= 1, "{m:?}");
        assert!(counter("vm.steps") > 0, "{m:?}");
        assert!(counter("vm.static_skips") > 0, "{m:?}");
        // The planner reported its ladder work.
        assert!(counter("plan.defines") >= 2, "{m:?}");
        // Latency histograms saw every op this test issued.
        let hists = m.get("histograms").unwrap();
        for op in ["plan", "hybrid", "stats"] {
            let h = hists.get(&format!("serve.latency.{op}_us")).unwrap();
            assert!(
                h.get("count").and_then(Json::as_i64).unwrap() >= 1,
                "{op}: {h:?}"
            );
        }
    }

    /// Two servers in one process must not share counters: the registry
    /// is per-server, not process-global.
    #[test]
    fn servers_do_not_share_metrics() {
        let a = server();
        let b = server();
        ok_line(&a, r#"{"op":"plan","source":"(define (id x) x)"}"#);
        let snap = ok_line(&b, r#"{"op":"metrics"}"#);
        let counters = snap.get("metrics").unwrap().get("counters").unwrap();
        assert_eq!(
            counters
                .get("serve.requests.plan")
                .and_then(Json::as_i64)
                .unwrap_or(0),
            0
        );
    }

    #[test]
    fn metrics_prometheus_format_renders_text() {
        let s = server();
        ok_line(&s, r#"{"op":"stats"}"#);
        let out = ok_line(&s, r#"{"op":"metrics","format":"prometheus"}"#);
        assert_eq!(out.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(out.get("format").and_then(Json::as_str), Some("prometheus"));
        let text = out.get("text").and_then(Json::as_str).unwrap();
        assert!(
            text.contains("# TYPE serve_requests_stats counter"),
            "{text}"
        );
        assert!(text.contains("serve_requests_stats 1"), "{text}");
    }

    #[test]
    fn responses_echo_a_trace_id() {
        let s = server();
        let out = ok_line(&s, r#"{"op":"stats"}"#);
        let trace = out.get("trace").and_then(Json::as_str).unwrap();
        assert_eq!(trace.len(), 16, "{trace}");
        assert!(trace.chars().all(|c| c.is_ascii_hexdigit()), "{trace}");
        // Distinct requests get distinct ids.
        let out2 = ok_line(&s, r#"{"op":"stats"}"#);
        assert_ne!(out2.get("trace").and_then(Json::as_str).unwrap(), trace);
    }
}

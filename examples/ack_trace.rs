//! Figure 1: the calls and dynamically generated size-change graphs for
//! `(ack 2 0)`.
//!
//! Run: `cargo run --example ack_trace`

use sct_contracts::{Machine, MachineConfig, TableStrategy};

fn main() {
    let prog = sct_lang::compile_program(
        "(define (ack m n)
           (cond [(= 0 m) (+ 1 n)]
                 [(= 0 n) (ack (- m 1) 1)]
                 [else (ack (- m 1) (ack m (- n 1)))]))
         (ack 2 0)",
    )
    .expect("compiles");
    let mut config = MachineConfig::monitored(TableStrategy::Imperative);
    config.trace = true;
    let mut m = Machine::new(&prog, config);
    let v = m.run().expect("ack terminates");

    println!("Figure 1 — calls and size changes for (ack 2 0)\n");
    for e in m.trace_events.iter().filter(|e| e.function == "ack") {
        let call = format!("(ack {})", e.args.join(" "));
        match &e.graph {
            None => println!("{call}    [first call: table seeded]"),
            Some(g) => println!("{call}    graph from previous active call: {g}"),
        }
    }
    println!("\nresult: {v}");
    println!("\n(x0 is m, x1 is n; compare the arcs with the figure's edge labels —");
    println!(" run-time graphs may carry extra arcs like (m→n) that no static");
    println!(" analysis could justify, which is §2.1's point about precision.)");
}

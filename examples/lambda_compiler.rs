//! Figure 2, verbatim: a checked λ-calculus implementation.
//!
//! The compiler `comp` turns a λ-term into a host procedure; compilation
//! terminates by structural recursion, but whether the *compiled program*
//! terminates depends on the term. Dynamic size-change monitoring lets the
//! terminating one (`c1`) run to completion and stops the diverging one
//! (`c2`) — "the power of dynamic enforcement" (§2.4).
//!
//! Run: `cargo run --example lambda_compiler`

use sct_contracts::{run, EvalError};

const FIGURE_2: &str = r#"
(define comp
  (terminating/c
   (lambda (e)
     (cond
       [(symbol? e) (lambda (rho) (hash-ref rho e))]
       [(eq? (car e) 'lam)
        (comp-lam (cadr e) (comp (caddr e)))]
       [else (comp-app (comp (car e)) (comp (cadr e)))]))
   "comp"))
(define (comp-lam x c)
  (lambda (rho) (lambda (z) (c (hash-set rho x z)))))
(define (comp-app c1 c2)
  (lambda (rho) ((c1 rho) (c2 rho))))
"#;

fn main() {
    // c1 = ((λx. x x) (λy. y)) — terminates.
    let ok = run(&format!(
        "{FIGURE_2}
         (define c1 (terminating/c (comp '((lam x (x x)) (lam y y))) \"c1\"))
         (c1 (hash))"
    ))
    .expect("c1 terminates under monitoring");
    println!("(c1 (hash)) = {} ; Okay", ok.to_write_string());

    // c2 = ((λx. x x) (λy. y y)) — Ω; the monitor stops it on the first
    // repeated self-application with a non-decreasing argument.
    let err = run(&format!(
        "{FIGURE_2}
         (define c2 (terminating/c (comp '((lam x (x x)) (lam y (y y)))) \"c2\"))
         (c2 (hash))"
    ))
    .unwrap_err();
    match err {
        EvalError::Sc(info) => println!("(c2 (hash)) = errorSC ; {info}"),
        other => panic!("expected errorSC for c2, got {other}"),
    }
}

//! Contracts for total correctness (§1, §2.3): composing classic
//! partial-correctness contracts (`->/c`, `flat/c`) with `terminating/c`,
//! with Findler–Felleisen blame deciding who is at fault.
//!
//! Run: `cargo run --example total_contracts`

use sct_contracts::{run, EvalError};

fn main() {
    // A total-correctness contract: integer -> integer, and terminating.
    let total = "
(define total-dec
  (contract (and/c (->/c (flat/c integer?) (flat/c integer?)) terminating/c)
            (lambda (x) (if (zero? x) 0 (total-dec (- x 1))))
            \"server\" \"client\"))";

    // Happy path: all obligations met.
    let v = run(&format!("{total} (total-dec 5)")).unwrap();
    println!("(total-dec 5) = {v}");

    // The client passes a non-integer: domain blame falls on the client.
    let err = run(&format!("{total} (total-dec 'five)")).unwrap_err();
    let EvalError::Contract(info) = err else {
        panic!("expected contract error")
    };
    println!("bad argument blames: {}", info.blame);
    assert_eq!(info.blame.as_ref(), "client");

    // The server breaks its range promise: positive blame.
    let err = run("
(define liar
  (contract (->/c (flat/c integer?) (flat/c integer?))
            (lambda (x) 'not-an-integer)
            \"server\" \"client\"))
(liar 3)")
    .unwrap_err();
    let EvalError::Contract(info) = err else {
        panic!("expected contract error")
    };
    println!("bad result blames:   {}", info.blame);
    assert_eq!(info.blame.as_ref(), "server");

    // The server diverges: the termination contract blames it — this is
    // the piece no partial-correctness contract can express.
    let err = run("
(define spinner
  (contract (and/c (->/c (flat/c integer?) (flat/c integer?)) terminating/c)
            (lambda (x) (spinner x))
            \"server\" \"client\"))
(spinner 3)")
    .unwrap_err();
    let EvalError::Sc(info) = err else {
        panic!("expected size-change error")
    };
    println!(
        "divergence blames:   {}",
        info.blame.as_deref().unwrap_or("?")
    );

    // §2.3's virtuous cycle: f contracts g to protect itself, so the
    // fault lands on g, not f.
    let err = run("
(define g-impl (lambda (x) (g-impl x)))
(define g (terminating/c g-impl \"library g\"))
(define f (terminating/c (lambda (x) (g x)) \"application f\"))
(f 1)")
    .unwrap_err();
    let EvalError::Sc(info) = err else {
        panic!("expected size-change error")
    };
    println!(
        "nested contracts blame the culprit: {}",
        info.blame.as_deref().unwrap()
    );
    assert_eq!(info.blame.as_deref(), Some("library g"));
}

//! The `scheme` row of Table 1: a Figure-2-style compiler-interpreter,
//! itself fully monitored, interpreting merge-sort over strings.
//!
//! Run: `cargo run --release --example scheme_interpreter`

use sct_contracts::{Machine, MachineConfig, SemanticsMode, TableStrategy, Value};
use sct_corpus::{scheme_interp, workloads, OrderSpec};

fn main() {
    // Compose the interpreter with the interpreted tree merge-sort.
    let source = scheme_interp::compose(scheme_interp::TARGET_MSORT).to_string();
    let prog = sct_lang::compile_program(&source).expect("interpreter compiles");

    let config = MachineConfig {
        mode: SemanticsMode::Monitored,
        order: OrderSpec::Extended.handle(),
        ..MachineConfig::monitored(TableStrategy::Imperative)
    };
    let mut m = Machine::new(&prog, config);
    m.run().expect("interpreter installs");

    let tree = workloads::random_string_tree(32);
    println!("input tree (pre-split merge-sort recursion tree), 32 strings");
    let go = m.global("go").expect("entry");
    let v = m
        .call(go, vec![tree])
        .expect("interpreted merge-sort terminates under monitoring");

    let items = v.list_to_vec().expect("proper list");
    println!("sorted ({} strings):", items.len());
    for chunk in items.chunks(8) {
        let row: Vec<String> = chunk.iter().map(Value::to_display_string).collect();
        println!("  {}", row.join(" "));
    }
    let sorted = items.windows(2).all(|w| match (&w[0], &w[1]) {
        (Value::Str(a), Value::Str(b)) => a <= b,
        _ => false,
    });
    assert!(sorted, "output must be sorted");
    println!(
        "\nmonitored calls: {}, checks: {} — the interpreter itself maintained \
         the size-change principle throughout (§2.4).",
        m.stats.monitored_calls, m.stats.checks
    );
}

//! Quick start: termination contracts in five minutes.
//!
//! Run: `cargo run --example quickstart`

use sct_contracts::{run, run_monitored, verify, EvalError, SymDomain};

fn main() {
    // 1. Partial programs run as usual; a terminating/c contract makes a
    //    function's dynamic extent subject to size-change monitoring.
    let v = run("
      (define (ack m n)
        (cond [(= 0 m) (+ 1 n)]
              [(= 0 n) (ack (- m 1) 1)]
              [else (ack (- m 1) (ack m (- n 1)))]))
      (define checked-ack (terminating/c ack \"ack contract\"))
      (checked-ack 2 3)")
    .expect("ack terminates");
    println!("(checked-ack 2 3) = {v}");

    // 2. A buggy loop under contract is stopped, and the contract's blame
    //    party is reported (§2.3).
    let err = run("
      (define spin (terminating/c (lambda (x) (spin x)) \"the spin module\"))
      (spin 'go)")
    .unwrap_err();
    match err {
        EvalError::Sc(info) => {
            println!("caught: {info}");
        }
        other => panic!("expected a size-change error, got {other}"),
    }

    // 3. Whole-program monitoring (λSCT): *everything* terminates, one way
    //    or the other (Theorem 3.1).
    let err = run_monitored("(define (up n) (up (+ n 1))) (up 0)").unwrap_err();
    println!("whole-program monitor said: {err}");

    // 4. The same property, statically (§4): no run-time cost at all.
    let verdict = verify(
        "(define (ack m n)
           (cond [(= 0 m) (+ 1 n)]
                 [(= 0 n) (ack (- m 1) 1)]
                 [else (ack (- m 1) (ack m (- n 1)))]))",
        "ack",
        &[SymDomain::Nat, SymDomain::Nat],
        SymDomain::Nat,
    )
    .expect("compiles");
    println!("static verdict for ack: {verdict}");
}

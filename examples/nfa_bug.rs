//! §5.1.2's war story: a divergence bug that sat in a decades-old Scheme
//! benchmark because its standard input never triggered it. The static
//! checker flags the buggy `state1` without running it; the dynamic
//! monitor catches it instantly on a triggering input; and the *fixed*
//! version both verifies and runs.
//!
//! Run: `cargo run --example nfa_bug`

use sct_contracts::{SymDomain, TableStrategy};
use sct_corpus::{diverging, run_dynamic, run_standard, table1};
use sct_symbolic::{verify_function, VerifyConfig};

fn main() {
    let buggy = diverging::BUGGY_NFA;
    let fixed = table1::NFA;

    // Static: the bug is found without any input at all.
    let prog = sct_lang::compile_program(buggy.source).unwrap();
    let verdict = verify_function(
        &prog,
        "state1",
        &[SymDomain::List],
        SymDomain::Any,
        &VerifyConfig::default(),
    );
    println!("static analysis of buggy state1: {verdict}");
    assert!(!verdict.is_verified());

    // Static: the fixed version verifies.
    let prog = sct_lang::compile_program(fixed.source).unwrap();
    let verdict = verify_function(
        &prog,
        "run-nfa",
        &[SymDomain::List],
        SymDomain::Any,
        &VerifyConfig::default(),
    );
    println!("static analysis of fixed run-nfa: {verdict}");
    assert!(verdict.is_verified());

    // Dynamic: on the triggering input ("cbcd"), the monitor stops the
    // buggy automaton at once.
    let err = run_dynamic(&buggy, TableStrategy::Imperative).unwrap_err();
    println!("dynamic monitor on buggy nfa: {err}");

    // And the benchmark's historic input (a^133 bc) runs fine — which is
    // exactly why the bug survived for decades.
    let v = run_standard(&fixed, Some(50_000_000)).unwrap();
    println!("fixed nfa on a^133 bc: {v}");
}

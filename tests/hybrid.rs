//! Agreement between the hybrid enforcement pipeline and pure dynamic
//! monitoring.
//!
//! The hybrid regime must be an *optimization* of λSCT, never a
//! weakening: statically discharged functions may skip their checks, but
//! the observable outcomes — values of terminating programs, the
//! catching of diverging ones, and the blame labels of refutations — have
//! to agree with what the monitor alone produces. The one deliberate
//! divergence is eager refutation itself: a refuted function the program
//! never applies still rejects the program up front (documented in
//! `sct_core::plan`), which is the hybrid regime's reject-before-run
//! contract, not an accident.

use sct_bench::{CompiledWorkload, Setup};
use sct_contracts::corpus::{diverging, table1};
use sct_contracts::{
    plan_program, refutation_error, EvalError, Machine, MachineConfig, PlanConfig, SemanticsMode,
    TableStrategy, Value,
};
use std::rc::Rc;
use std::time::Duration;

/// A fast plan configuration for sweeping many corpus programs in debug
/// builds: smaller fuel, tight wall clock. Plan *quality* is irrelevant to
/// the agreement properties — anything unproven just stays monitored.
fn quick_plan_config() -> PlanConfig {
    let mut cfg = PlanConfig::default();
    cfg.verify.exec.step_budget = 30_000;
    cfg.time_budget = Some(Duration::from_millis(200));
    cfg
}

/// Runs a source program the way `sct hybrid` does: plan, report eagerly
/// when refuted, otherwise run fully monitored with the plan's fast path.
fn run_hybrid_with(
    source: &str,
    order: sct_contracts::interp::OrderHandle,
    cfg: &PlanConfig,
) -> Result<Value, EvalError> {
    let prog = sct_contracts::lang::compile_program(source)
        .unwrap_or_else(|e| panic!("compile error: {e}"));
    let plan = plan_program(&prog, cfg);
    if let Some(err) = refutation_error(&plan) {
        return Err(err);
    }
    let config = MachineConfig {
        mode: SemanticsMode::Monitored,
        order,
        plan: Some(Rc::new(plan)),
        ..MachineConfig::monitored(TableStrategy::Imperative)
    };
    Machine::new(&prog, config).run()
}

fn run_monitored_with(
    source: &str,
    order: sct_contracts::interp::OrderHandle,
) -> Result<Value, EvalError> {
    let prog = sct_contracts::lang::compile_program(source)
        .unwrap_or_else(|e| panic!("compile error: {e}"));
    let config = MachineConfig {
        mode: SemanticsMode::Monitored,
        order,
        ..MachineConfig::monitored(TableStrategy::Imperative)
    };
    Machine::new(&prog, config).run()
}

/// A statically refuted function must be blamed exactly as the dynamic
/// monitor blames it at run time: same blame label, same function name.
#[test]
fn refuted_blame_label_matches_dynamic_monitor() {
    let source = "(define f (terminating/c (lambda (x) (f x)) \"my-party\"))\n(f 1)";

    // Dynamic: standard semantics — the terminating/c extent is monitored
    // and blames its label.
    let Err(EvalError::Sc(dynamic)) = sct_contracts::run(source) else {
        panic!("dynamic run should raise errorSC");
    };
    // Dynamic, fully monitored semantics: same blame.
    let Err(EvalError::Sc(monitored)) = sct_contracts::run_monitored(source) else {
        panic!("monitored run should raise errorSC");
    };
    // Hybrid: the pre-pass refutes before running.
    let Err(EvalError::Sc(hybrid)) = sct_contracts::run_hybrid(source) else {
        panic!("hybrid run should refute eagerly");
    };

    assert_eq!(hybrid.blame.as_deref(), Some("my-party"));
    assert_eq!(hybrid.blame, dynamic.blame);
    assert_eq!(hybrid.blame, monitored.blame);
    assert_eq!(hybrid.function, dynamic.function);
    assert_eq!(hybrid.function, monitored.function);
}

/// Without a `terminating/c` label (whole-program monitoring) both
/// regimes report no blame party.
#[test]
fn refuted_unlabeled_agrees_on_no_blame() {
    let source = "(define (f x) (f x))\n(f 1)";
    let Err(EvalError::Sc(monitored)) = sct_contracts::run_monitored(source) else {
        panic!("monitored run should raise errorSC");
    };
    let Err(EvalError::Sc(hybrid)) = sct_contracts::run_hybrid(source) else {
        panic!("hybrid run should refute eagerly");
    };
    assert_eq!(monitored.blame, None);
    assert_eq!(hybrid.blame, None);
    assert_eq!(hybrid.function, monitored.function);
}

/// Hybrid and plain monitored execution agree on final values across the
/// whole Figure-10 corpus (`run_once` also asserts each workload's result
/// checker), and the pre-pass really discharges the workloads the paper's
/// static column proves.
#[test]
fn fig10_hybrid_agrees_with_monitored() {
    let mut static_workloads = Vec::new();
    for w in sct_contracts::corpus::workloads::fig10() {
        let id = w.id;
        let compiled = CompiledWorkload::new(w);
        if compiled.plan.count("static") > 0 {
            static_workloads.push(id);
        }
        assert_eq!(
            compiled.plan.count("refuted"),
            0,
            "{id}: spurious refutation"
        );
        for n in [3, 12] {
            compiled.run_once(n, Setup::Imperative);
            compiled.run_once(n, Setup::Hybrid);
        }
    }
    for expected in ["fact", "sum", "ack"] {
        assert!(
            static_workloads.contains(&expected),
            "{expected} should be statically discharged; got {static_workloads:?}"
        );
    }
}

/// Table 1's terminating programs: wherever the plain monitor accepts the
/// program, the hybrid pipeline must produce the *same value*. (Where the
/// monitor false-positives, hybrid may legitimately do better — skipping
/// a check the verifier proved unnecessary — so no constraint there.)
#[test]
fn table1_hybrid_value_agreement() {
    for p in table1::all() {
        let mut cfg = quick_plan_config();
        // Refutation presumes the default order, exactly as `sct hybrid
        // --order …` disables it for custom-order monitors.
        cfg.refute = matches!(p.order, sct_contracts::corpus::OrderSpec::Default);
        let order = p.order.handle();
        let monitored = run_monitored_with(p.source, order.clone());
        let hybrid = run_hybrid_with(p.source, order, &cfg);
        match (monitored, hybrid) {
            (Ok(m), Ok(h)) => assert!(
                sct_contracts::interp::equal(&m, &h),
                "{}: monitored {} vs hybrid {}",
                p.id,
                m.to_write_string(),
                h.to_write_string()
            ),
            (Ok(m), Err(e)) => {
                panic!(
                    "{}: monitored accepted ({}) but hybrid failed: {e}",
                    p.id,
                    m.to_write_string()
                )
            }
            (Err(_), _) => {} // dynamic false positive; hybrid unconstrained
        }
    }
}

/// The soundness cornerstone: every diverging corpus program is still
/// caught under hybrid enforcement — eagerly by refutation or at run time
/// by the residual monitor — never allowed to run away on the fast path.
#[test]
fn diverging_corpus_still_caught_by_hybrid() {
    let cfg = quick_plan_config();
    for p in diverging::all() {
        let r = run_hybrid_with(p.source, p.order.handle(), &cfg);
        assert!(
            matches!(r, Err(EvalError::Sc(_))),
            "{}: expected errorSC under hybrid, got {r:?}",
            p.id
        );
    }
}

/// The fast path is visible in the machine counters: a discharged
/// workload runs with zero checks, while the same program without a plan
/// checks every call.
#[test]
fn fast_path_skips_all_checks_for_discharged_function() {
    let source = "(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))\n(sum 50 0)";
    let prog = sct_contracts::lang::compile_program(source).unwrap();
    let plan = Rc::new(plan_program(&prog, &PlanConfig::default()));
    assert_eq!(plan.count("static"), 1);

    let mut with_plan = Machine::new(
        &prog,
        MachineConfig {
            plan: Some(plan),
            ..MachineConfig::monitored(TableStrategy::Imperative)
        },
    );
    let v = with_plan.run().unwrap();
    assert_eq!(v, Value::int(1275));
    assert_eq!(with_plan.stats.checks, 0);
    assert!(with_plan.stats.static_skips >= 50);

    let mut without = Machine::new(&prog, MachineConfig::monitored(TableStrategy::Imperative));
    assert_eq!(without.run().unwrap(), Value::int(1275));
    assert!(without.stats.checks > 0);
    assert_eq!(without.stats.static_skips, 0);
}

/// The automatic ladder must never *assume* an unverified result domain:
/// here the recursive result is actually −1, so a `nat`-result assumption
/// would prune the `(< r 0)` branch as infeasible, hide the
/// non-descending `(f x)` self-call, and put a diverging function on the
/// fast path. The ladder uses result `any`, so the self-call is seen and
/// the function is refuted (or, at worst, monitored) — either way the
/// run must end in `errorSC`.
#[test]
fn ladder_never_assumes_unverified_result_domain() {
    let source = "(define (f x) (if (= x 0) -1 (if (< (f (- x 1)) 0) (f x) 0)))\n(f 1)";
    let monitored = sct_contracts::run_monitored(source);
    assert!(matches!(monitored, Err(EvalError::Sc(_))), "{monitored:?}");
    let hybrid = sct_contracts::run_hybrid(source);
    assert!(
        matches!(hybrid, Err(EvalError::Sc(_))),
        "hybrid must not discharge f via a result-domain assumption, got {hybrid:?}"
    );
}

/// Nested `terminating/c` wrappers: the machine blames `blames.last()`
/// (the innermost label), and the eager refutation must agree.
#[test]
fn refuted_nested_wrappers_blame_innermost() {
    let source = "(define f (terminating/c (terminating/c (lambda (x) (f x)) \"inner\") \
                  \"outer\"))\n(f 1)";
    let Err(EvalError::Sc(monitored)) = sct_contracts::run_monitored(source) else {
        panic!("monitored run should raise errorSC");
    };
    let Err(EvalError::Sc(hybrid)) = sct_contracts::run_hybrid(source) else {
        panic!("hybrid run should refute eagerly");
    };
    assert_eq!(monitored.blame.as_deref(), Some("inner"));
    assert_eq!(hybrid.blame, monitored.blame);
}

/// A nat-guarded discharge falls back to the monitor on out-of-domain
/// arguments: `(sum -1 0)` diverges toward -∞, and the guard must hand it
/// to the monitor, which stops it.
#[test]
fn guarded_fast_path_falls_back_out_of_domain() {
    let source = "(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))\n(sum -1 0)";
    let r = sct_contracts::run_hybrid(source);
    assert!(
        matches!(r, Err(EvalError::Sc(_))),
        "out-of-domain call must stay monitored and be caught, got {r:?}"
    );
}

/// A shadowed `define` must not inherit its replacement's proof: the
/// executor's global table keeps the *last* binding, but `(g 1)` here
/// runs the diverging *first* one, so its λ must stay monitored (the
/// pre-pass pins each define's own λ id when exploring).
#[test]
fn shadowed_define_does_not_inherit_replacement_proof() {
    let source = "(define (g x) (g x))\n(g 1)\n(define (g x) 0)";
    let monitored = sct_contracts::run_monitored(source);
    assert!(matches!(monitored, Err(EvalError::Sc(_))), "{monitored:?}");
    let hybrid = sct_contracts::run_hybrid(source);
    assert!(
        matches!(hybrid, Err(EvalError::Sc(_))),
        "the first g must stay monitored despite the terminating rebinding, got {hybrid:?}"
    );
}

/// A discharge must not survive global mutation: `f`'s proof descends
/// through `dec`, but a top-level `set!` swaps `dec` for the identity, so
/// `f` must stay monitored and the run must be stopped.
#[test]
fn set_bang_invalidated_discharge_stays_monitored() {
    let source = "(define (dec x) (- x 1))
                  (define (f x) (if (zero? x) 0 (f (dec x))))
                  (set! dec (lambda (x) x))
                  (f 3)";
    let r = sct_contracts::run_hybrid(source);
    assert!(
        matches!(r, Err(EvalError::Sc(_))),
        "mutated-helper divergence must be caught, got {r:?}"
    );
}

/// The one deliberate divergence from the monitored semantics: a refuted
/// function the program never applies still rejects the program up front
/// (the hybrid regime's reject-before-run contract; see `sct_core::plan`).
#[test]
fn refutation_is_eager_even_if_never_applied() {
    let source = "(define f (terminating/c (lambda (x) (f x)) \"p\"))\n42";
    assert_eq!(
        sct_contracts::run_monitored(source).unwrap(),
        Value::int(42),
        "the monitor lets a never-applied refuted function pass"
    );
    let hybrid = sct_contracts::run_hybrid(source);
    assert!(
        matches!(hybrid, Err(EvalError::Sc(ref info)) if info.blame.as_deref() == Some("p")),
        "hybrid rejects before running, with blame, got {hybrid:?}"
    );
}

//! Smoke test for the `docs/GUIDE.md` transcripts: every CLI session the
//! guide shows is replayed against the real binary and the shown output
//! asserted (up to values that legitimately vary, like microsecond
//! timings). A drift between the guide and the implementation fails CI.

use std::path::Path;
use std::process::{Command, Output};

fn sct(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sct"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawning sct")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn guide_examples_exist() {
    for f in [
        "ack.sct",
        "spin.sct",
        "sum.sct",
        "pair.sct",
        "pair-edit.sct",
        "iterate.sct",
    ] {
        let p = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("examples/guide")
            .join(f);
        assert!(p.exists(), "guide example missing: {}", p.display());
    }
}

/// §2 of the guide: `sct run` and `sct monitor` on ack.
#[test]
fn guide_dynamic_ack() {
    let run = sct(&["run", "examples/guide/ack.sct"]);
    assert!(run.status.success(), "{}", stderr(&run));
    assert_eq!(stdout(&run).trim(), "9");

    let mon = sct(&["monitor", "examples/guide/ack.sct"]);
    assert!(mon.status.success(), "{}", stderr(&mon));
    assert_eq!(stdout(&mon).trim(), "9");
    assert!(
        stderr(&mon).contains("applications=44 monitored=44 checks=44"),
        "guide counters drifted: {}",
        stderr(&mon)
    );
}

/// §2: the labeled diverging program is stopped with blame at the second
/// application.
#[test]
fn guide_dynamic_spin_blamed() {
    let mon = sct(&["monitor", "examples/guide/spin.sct"]);
    assert!(!mon.status.success());
    let err = stderr(&mon);
    assert!(err.contains("applications=2"), "{err}");
    assert!(
        err.contains("idempotent with no self-descending arc in calls to spin"),
        "{err}"
    );
    assert!(err.contains("blaming spin.sct"), "{err}");
}

/// §3: static verification of ack with the Figure 9 graph count.
#[test]
fn guide_static_verify_ack() {
    let v = sct(&["verify", "examples/guide/ack.sct", "ack", "nat,nat -> nat"]);
    assert!(v.status.success(), "{}", stderr(&v));
    assert_eq!(stdout(&v).trim(), "verified (ack: 2 graphs)");
}

/// §4: hybrid on sum — statically discharged, zero checks at run time.
#[test]
fn guide_hybrid_sum_discharged() {
    let h = sct(&["hybrid", "examples/guide/sum.sct"]);
    assert!(h.status.success(), "{}", stderr(&h));
    assert_eq!(stdout(&h).trim(), "5000050000");
    let err = stderr(&h);
    assert!(
        err.contains("plan: 1 static, 0 monitored, 0 refuted"),
        "{err}"
    );
    assert!(
        err.contains("monitored=0 checks=0 static-skips=100001"),
        "guide counters drifted: {err}"
    );
    assert!(
        err.contains("; pic: 0 hits, 0 misses, 0 invalidations"),
        "direct calls consult no inline cache: {err}"
    );

    // The plain monitor pays for every one of those calls.
    let mon = sct(&["monitor", "examples/guide/sum.sct"]);
    assert!(
        stderr(&mon).contains("monitored=100001 checks=100001"),
        "{}",
        stderr(&mon)
    );
}

/// §5, "Observability" subsection: `--metrics` prints the registry
/// snapshot after the answer, and the counter values the guide shows
/// replay deterministically — exact step, skip, rung, and fuel counts.
#[test]
fn guide_hybrid_metrics_replays_deterministically() {
    let h = sct(&["hybrid", "examples/guide/sum.sct", "--metrics"]);
    assert!(h.status.success(), "{}", stderr(&h));
    // The answer stays on stdout; the snapshot is stderr diagnostics.
    assert_eq!(stdout(&h).trim(), "5000050000");
    let err = stderr(&h);
    for line in [
        "; metric plan.defines 1",
        "; metric plan.fuel_used 32",
        "; metric plan.rung.nat.attempts 1",
        "; metric plan.rung.nat.discharged 1",
        "; metric vm.runs 1",
        "; metric vm.applications 100001",
        "; metric vm.static_skips 100001",
        "; metric vm.steps 800011",
        "; metric vm.checks 0",
        "; metric plan.define_us.count 1",
    ] {
        assert!(
            err.contains(line),
            "guide metric drifted, wanted {line:?} in: {err}"
        );
    }
    // The metrics print after the answer's own diagnostics: a consumer
    // can split the stream at the first `; metric`.
    let first_metric = err.find("; metric").expect("metric lines present");
    assert!(
        err[..first_metric].contains("; pic: 0 hits"),
        "snapshot must follow the standard report: {err}"
    );

    // Without the flag, nothing changes — no metric lines at all.
    let plain = sct(&["hybrid", "examples/guide/sum.sct"]);
    assert!(!stderr(&plain).contains("; metric"), "{}", stderr(&plain));

    // `sct run --metrics` snapshots the fully dynamic regime: every ack
    // application monitored and checked, pinned to the guide's counts.
    let r = sct(&["run", "examples/guide/ack.sct", "--metrics"]);
    assert!(r.status.success(), "{}", stderr(&r));
    assert_eq!(stdout(&r).trim(), "9");
    let err = stderr(&r);
    for line in [
        "; metric vm.monitored_calls 44",
        "; metric vm.checks 44",
        "; metric vm.steps 450",
        "; metric vm.max_kont_depth 18",
    ] {
        assert!(
            err.contains(line),
            "guide metric drifted, wanted {line:?} in: {err}"
        );
    }
}

/// §4: the `--plan` JSON dump, with the nat guard the guide explains.
#[test]
fn guide_hybrid_plan_json() {
    let p = sct(&["hybrid", "examples/guide/sum.sct", "--plan"]);
    assert!(p.status.success(), "{}", stderr(&p));
    let json = stdout(&p);
    assert!(json.contains("\"schema\": \"sct-plan/1\""), "{json}");
    assert!(json.contains("\"name\": \"sum\""), "{json}");
    assert!(json.contains("\"decision\": \"static\""), "{json}");
    assert!(json.contains("\"guard\": [\"nat\", \"nat\"]"), "{json}");
    assert!(
        json.contains("\"detail\": \"verified (sum: 1 graphs)\""),
        "{json}"
    );
}

/// §4: the `--dump-ir` listing — the plan-directed IR with the `nat nat`
/// guard baked into both `sum` call sites, exactly as the guide shows.
#[test]
fn guide_hybrid_dump_ir() {
    let d = sct(&["hybrid", "examples/guide/sum.sct", "--dump-ir"]);
    assert!(d.status.success(), "{}", stderr(&d));
    let ir = stdout(&d);
    assert!(
        ir.contains("1 templates, 3 consts, 2 sites (1 specialized), plan-directed"),
        "{ir}"
    );
    assert!(
        ir.contains("lambda 0 (sum; params 2, frame 2, captures [])"),
        "{ir}"
    );
    assert!(
        ir.matches("site=guarded(lambda 0 [nat nat])").count() == 2,
        "both sum call sites carry the inline guard: {ir}"
    );
    assert!(ir.contains("tail-call"), "{ir}");
    assert!(
        ir.contains("load-local+call-prim") && ir.contains("const+call-prim"),
        "the guide shows the fused superinstructions: {ir}"
    );
}

/// §5 of the guide: the edit → incremental re-plan loop. Replays the
/// three-command transcript verbatim — cold (2 misses), warm (2 hits),
/// and the one-define edit (exactly 1 miss) — against a fresh cache dir.
#[test]
fn guide_incremental_replan_loop() {
    let cache_dir = std::env::temp_dir().join(format!("sct-guide-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    let dir = cache_dir.to_str().unwrap();

    let cold = sct(&["hybrid", "examples/guide/pair.sct", "--cache-dir", dir]);
    assert!(cold.status.success(), "{}", stderr(&cold));
    assert_eq!(stdout(&cold).trim(), "6");
    let err = stderr(&cold);
    assert!(err.contains("cache: 0 hits, 2 misses"), "{err}");
    assert!(
        err.contains("plan: 2 static, 0 monitored, 0 refuted"),
        "{err}"
    );
    assert!(
        err.contains("applications=8 monitored=0 checks=0 static-skips=8"),
        "guide counters drifted: {err}"
    );

    let warm = sct(&["hybrid", "examples/guide/pair.sct", "--cache-dir", dir]);
    assert!(
        stderr(&warm).contains("cache: 2 hits, 0 misses"),
        "warm run must be pure hits: {}",
        stderr(&warm)
    );

    let edited = sct(&["hybrid", "examples/guide/pair-edit.sct", "--cache-dir", dir]);
    assert!(edited.status.success(), "{}", stderr(&edited));
    assert_eq!(stdout(&edited).trim(), "10");
    assert!(
        stderr(&edited).contains("cache: 1 hits, 1 misses"),
        "editing one define must re-verify exactly one: {}",
        stderr(&edited)
    );

    std::fs::remove_dir_all(&cache_dir).ok();
}

/// §5: the `sct serve` one-liner — a stdio plan request answers with the
/// embedded sct-plan/1 document and cold-miss cache counters.
#[test]
fn guide_serve_stdio_transcript() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_sct"))
        .args(["serve", "--threads", "2"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning sct serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"{\"op\":\"plan\",\"source\":\"(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))\"}\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let line = String::from_utf8_lossy(&out.stdout);
    assert!(line.contains("\"ok\":true"), "{line}");
    assert!(line.contains("\"schema\":\"sct-plan/1\""), "{line}");
    assert!(
        line.contains("\"cache\":{\"hits\":0,\"misses\":1,\"warm\":false}"),
        "{line}"
    );
    assert!(line.contains("[[\"len\",false]]"), "{line}");
}

/// §4, "Inline caches" subsection: the iterate transcript — two misses
/// (one per distinct callee through the generic site), the rest hits,
/// no invalidations — and the `site=generic(pic N)` IR annotation.
#[test]
fn guide_hybrid_pic_transcript() {
    let h = sct(&["hybrid", "examples/guide/iterate.sct"]);
    assert!(h.status.success(), "{}", stderr(&h));
    assert_eq!(stdout(&h).trim(), "1035");
    let err = stderr(&h);
    assert!(
        err.contains("; pic: 18 hits, 2 misses, 0 invalidations"),
        "guide PIC counters drifted: {err}"
    );

    let d = sct(&["hybrid", "examples/guide/iterate.sct", "--dump-ir"]);
    assert!(d.status.success(), "{}", stderr(&d));
    let ir = stdout(&d);
    assert!(
        ir.contains("site=generic(pic 2)"),
        "the (f x) site owns an inline cache: {ir}"
    );
}

/// §4: hybrid refutes spin before running, with the monitor's blame label.
#[test]
fn guide_hybrid_spin_refuted_eagerly() {
    let h = sct(&["hybrid", "examples/guide/spin.sct"]);
    assert!(!h.status.success());
    let err = stderr(&h);
    assert!(
        err.contains("plan: 0 static, 0 monitored, 1 refuted"),
        "{err}"
    );
    assert!(err.contains("blaming spin.sct"), "{err}");
    assert!(err.contains("(statically refuted before running)"), "{err}");
    // Refuted before running: no machine counters were printed.
    assert!(!err.contains("applications="), "{err}");
}

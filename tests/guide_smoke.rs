//! Smoke test for the `docs/GUIDE.md` transcripts: every CLI session the
//! guide shows is replayed against the real binary and the shown output
//! asserted (up to values that legitimately vary, like microsecond
//! timings). A drift between the guide and the implementation fails CI.

use std::path::Path;
use std::process::{Command, Output};

fn sct(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sct"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawning sct")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn guide_examples_exist() {
    for f in ["ack.sct", "spin.sct", "sum.sct"] {
        let p = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("examples/guide")
            .join(f);
        assert!(p.exists(), "guide example missing: {}", p.display());
    }
}

/// §2 of the guide: `sct run` and `sct monitor` on ack.
#[test]
fn guide_dynamic_ack() {
    let run = sct(&["run", "examples/guide/ack.sct"]);
    assert!(run.status.success(), "{}", stderr(&run));
    assert_eq!(stdout(&run).trim(), "9");

    let mon = sct(&["monitor", "examples/guide/ack.sct"]);
    assert!(mon.status.success(), "{}", stderr(&mon));
    assert_eq!(stdout(&mon).trim(), "9");
    assert!(
        stderr(&mon).contains("applications=44 monitored=44 checks=44"),
        "guide counters drifted: {}",
        stderr(&mon)
    );
}

/// §2: the labeled diverging program is stopped with blame at the second
/// application.
#[test]
fn guide_dynamic_spin_blamed() {
    let mon = sct(&["monitor", "examples/guide/spin.sct"]);
    assert!(!mon.status.success());
    let err = stderr(&mon);
    assert!(err.contains("applications=2"), "{err}");
    assert!(
        err.contains("idempotent with no self-descending arc in calls to spin"),
        "{err}"
    );
    assert!(err.contains("blaming spin.sct"), "{err}");
}

/// §3: static verification of ack with the Figure 9 graph count.
#[test]
fn guide_static_verify_ack() {
    let v = sct(&["verify", "examples/guide/ack.sct", "ack", "nat,nat -> nat"]);
    assert!(v.status.success(), "{}", stderr(&v));
    assert_eq!(stdout(&v).trim(), "verified (ack: 2 graphs)");
}

/// §4: hybrid on sum — statically discharged, zero checks at run time.
#[test]
fn guide_hybrid_sum_discharged() {
    let h = sct(&["hybrid", "examples/guide/sum.sct"]);
    assert!(h.status.success(), "{}", stderr(&h));
    assert_eq!(stdout(&h).trim(), "5000050000");
    let err = stderr(&h);
    assert!(
        err.contains("plan: 1 static, 0 monitored, 0 refuted"),
        "{err}"
    );
    assert!(
        err.contains("monitored=0 checks=0 static-skips=100001"),
        "guide counters drifted: {err}"
    );

    // The plain monitor pays for every one of those calls.
    let mon = sct(&["monitor", "examples/guide/sum.sct"]);
    assert!(
        stderr(&mon).contains("monitored=100001 checks=100001"),
        "{}",
        stderr(&mon)
    );
}

/// §4: the `--plan` JSON dump, with the nat guard the guide explains.
#[test]
fn guide_hybrid_plan_json() {
    let p = sct(&["hybrid", "examples/guide/sum.sct", "--plan"]);
    assert!(p.status.success(), "{}", stderr(&p));
    let json = stdout(&p);
    assert!(json.contains("\"schema\": \"sct-plan/1\""), "{json}");
    assert!(json.contains("\"name\": \"sum\""), "{json}");
    assert!(json.contains("\"decision\": \"static\""), "{json}");
    assert!(json.contains("\"guard\": [\"nat\", \"nat\"]"), "{json}");
    assert!(
        json.contains("\"detail\": \"verified (sum: 1 graphs)\""),
        "{json}"
    );
}

/// §4: hybrid refutes spin before running, with the monitor's blame label.
#[test]
fn guide_hybrid_spin_refuted_eagerly() {
    let h = sct(&["hybrid", "examples/guide/spin.sct"]);
    assert!(!h.status.success());
    let err = stderr(&h);
    assert!(
        err.contains("plan: 0 static, 0 monitored, 1 refuted"),
        "{err}"
    );
    assert!(err.contains("blaming spin.sct"), "{err}");
    assert!(err.contains("(statically refuted before running)"), "{err}");
    // Refuted before running: no machine counters were printed.
    assert!(!err.contains("applications="), "{err}");
}

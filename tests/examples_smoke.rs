//! Smoke test: every program in `examples/` must run to completion.
//!
//! The examples double as executable documentation for the paper's
//! figures (§1 Figure 1 trace, §2 contracts, the NFA case study, …), so a
//! broken example is a broken claim. Each is run via `cargo run --example`
//! in the same profile as the test run, reusing the build cache.

use std::process::Command;

/// Every example under `examples/`, discovered from the source tree so a
/// newly added example cannot be forgotten here.
fn example_names() -> Vec<String> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples");
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            Some(name.strip_suffix(".rs")?.to_string())
        })
        .collect();
    names.sort();
    assert!(
        names.contains(&"quickstart".to_string()),
        "example discovery broke: {names:?}"
    );
    names
}

#[test]
fn every_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for name in example_names() {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", &name])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("spawning cargo for example {name}: {e}"));
        assert!(
            output.status.success(),
            "example {name} failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

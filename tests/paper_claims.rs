//! Cross-crate integration tests pinning the paper's headline claims.
//!
//! Each test names the claim it checks; together they are the repository's
//! executable summary of the reproduction.

use sct_contracts::{run, run_monitored, verify, EvalError, SymDomain, TableStrategy, Value};
use sct_corpus::{diverging, run_dynamic, run_standard, table1};

const ACK: &str = "
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))";

/// Theorem 3.1 — all programs terminate under the monitored semantics:
/// the diverging corpus ends in errorSC instead of running forever.
#[test]
fn theorem_3_1_totality() {
    for p in diverging::all() {
        let r = run_dynamic(&p, TableStrategy::Imperative);
        assert!(matches!(r, Err(EvalError::Sc(_))), "{}: {r:?}", p.id);
    }
}

/// Theorem 3.2 — soundness: a value produced under monitoring is the value
/// the standard semantics produces.
#[test]
fn theorem_3_2_soundness() {
    for p in table1::all() {
        let monitored = run_dynamic(&p, TableStrategy::Imperative).unwrap();
        let standard = run_standard(&p, Some(200_000_000)).unwrap();
        assert!(
            sct_interp::equal(&monitored, &standard),
            "{}: monitored {} vs standard {}",
            p.id,
            monitored.to_write_string(),
            standard.to_write_string()
        );
    }
}

/// Corollary 3.3 — divergence is caught: the §2.1 buggy Ackermann stops
/// exactly as the worked example describes (on the (ack 1 2) call).
#[test]
fn corollary_3_3_buggy_ack() {
    let buggy = "
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack m (ack m (- n 1)))]))
(ack 2 0)";
    let err = run_monitored(buggy).unwrap_err();
    let EvalError::Sc(info) = err else { panic!() };
    // The witness graph of §2.1: {(m→=m), (n→=m)} — idempotent, no descent.
    assert!(info.violation.witness.is_idempotent());
    assert!(!info.violation.witness.has_self_descent());
}

/// §2.2 — closures stay distinct: CPS code accumulating continuations
/// passes, even though every static conflation of those closures fails.
#[test]
fn section_2_2_cps_len() {
    let src = "
(define (len l) (loop l (lambda (x) x)))
(define (loop l k)
  (cond [(empty? l) (k 0)]
        [(cons? l) (loop (rest l) (lambda (n) (k (+ 1 n))))]))
(len '(a b c d))";
    assert_eq!(run_monitored(src).unwrap(), Value::int(4));
}

/// §2.3 — blame: the party named by the innermost violated contract is
/// reported.
#[test]
fn section_2_3_blame() {
    let err = run("
(define f (terminating/c (lambda (x) (f x)) \"party-f\"))
(f 1)")
    .unwrap_err();
    let EvalError::Sc(info) = err else { panic!() };
    assert_eq!(info.blame.as_deref(), Some("party-f"));
}

/// §2.4 / Figure 2 — the checked λ-calculus compiler: c1 runs, c2 is
/// caught.
#[test]
fn section_2_4_figure_2() {
    let compiler = "
(define comp
  (terminating/c
   (lambda (e)
     (cond
       [(symbol? e) (lambda (rho) (hash-ref rho e))]
       [(eq? (car e) 'lam) (comp-lam (cadr e) (comp (caddr e)))]
       [else (comp-app (comp (car e)) (comp (cadr e)))]))))
(define (comp-lam x c)
  (lambda (rho) (lambda (z) (c (hash-set rho x z)))))
(define (comp-app c1 c2)
  (lambda (rho) ((c1 rho) (c2 rho))))";
    let ok = run(&format!(
        "{compiler}
         (define c1 (terminating/c (comp '((lam x (x x)) (lam y y)))))
         (c1 (hash))"
    ));
    assert!(ok.is_ok(), "c1 should terminate: {:?}", ok.err());
    let err = run(&format!(
        "{compiler}
         (define c2 (terminating/c (comp '((lam x (x x)) (lam y (y y))))))
         (c2 (hash))"
    ))
    .unwrap_err();
    assert!(matches!(err, EvalError::Sc(_)), "c2 must be caught: {err}");
}

/// §3.6 / Figure 7 — selective enforcement: the same code is allowed to
/// violate SCT outside a contract and stopped inside one.
#[test]
fn figure_7_selective_enforcement() {
    // climb ascends: fine unmonitored, rejected under contract.
    let free = "
(define (climb n) (if (< n 3) (climb (+ n 1)) n))
(climb 0)";
    assert_eq!(run(free).unwrap(), Value::int(3));
    let contracted = "
(define (climb n) (if (< n 3) (climb (+ n 1)) n))
((terminating/c climb) 0)";
    assert!(matches!(run(contracted), Err(EvalError::Sc(_))));
}

/// §4.2 / Figure 9 — the static checker discovers exactly ack's two
/// size-change graphs and verifies it.
#[test]
fn figure_9_static_ack() {
    let verdict = verify(
        ACK,
        "ack",
        &[SymDomain::Nat, SymDomain::Nat],
        SymDomain::Nat,
    )
    .unwrap();
    match verdict {
        sct_contracts::StaticVerdict::Verified { graphs } => {
            assert_eq!(graphs, vec![("ack".to_string(), 2)]);
        }
        other => panic!("ack should verify: {other}"),
    }
}

/// §5 — the two implementation strategies agree on all corpus answers.
#[test]
fn strategies_agree_on_corpus() {
    for p in table1::all() {
        let imp = run_dynamic(&p, TableStrategy::Imperative).unwrap();
        let cm = run_dynamic(&p, TableStrategy::ContinuationMark).unwrap();
        assert!(sct_interp::equal(&imp, &cm), "{}", p.id);
    }
}

/// §5.1.2 — detection is fast: every diverging program is caught within a
/// bounded number of machine steps (no proportionality to a would-be
/// infinite run).
#[test]
fn divergence_detected_quickly() {
    for p in diverging::all() {
        let prog = sct_lang::compile_program(p.source).unwrap();
        let config = sct_contracts::MachineConfig {
            mode: sct_contracts::SemanticsMode::Monitored,
            order: p.order.handle(),
            ..sct_contracts::MachineConfig::monitored(TableStrategy::Imperative)
        };
        let mut m = sct_contracts::Machine::new(&prog, config);
        let r = m.run();
        assert!(matches!(r, Err(EvalError::Sc(_))), "{}", p.id);
        assert!(
            m.stats.steps < 1_000_000,
            "{}: took {} steps to detect",
            p.id,
            m.stats.steps
        );
    }
}

/// The soundness gap the formal semantics closes: with *allocation*
/// closure keys (pure identity), Y-combinator loops slip past the monitor
/// because every unfolding allocates fresh closures; the default
/// structural keys (the formal model's equality) catch them.
#[test]
fn structural_keys_catch_y_combinator_divergence() {
    let omega_y = "
(define Y
  (lambda (h)
    ((lambda (x) (h (lambda (v) ((x x) v))))
     (lambda (x) (h (lambda (v) ((x x) v)))))))
(define spin (Y (lambda (self) (lambda (n) (self n)))))
(spin 5)";
    let prog = sct_lang::compile_program(omega_y).unwrap();

    // Structural keys (default): caught.
    let mut m = sct_contracts::Machine::new(
        &prog,
        sct_contracts::MachineConfig::monitored(TableStrategy::Imperative),
    );
    assert!(matches!(m.run(), Err(EvalError::Sc(_))));

    // Allocation keys: every closure is fresh, nothing recurs, fuel runs out.
    let mut cfg = sct_contracts::MachineConfig::monitored(TableStrategy::Imperative);
    cfg.monitor.key_strategy = sct_contracts::KeyStrategy::Allocation;
    cfg.fuel = Some(500_000);
    let mut m = sct_contracts::Machine::new(&prog, cfg);
    assert!(
        matches!(m.run(), Err(EvalError::OutOfFuel)),
        "allocation keys must miss Y-combinator recursion (the documented trade-off)"
    );
}

//! Differential oracle: the flat-IR dispatch VM ≡ the reference
//! tree-walking CEK machine.
//!
//! PR 5 replaced the evaluator under every regime of the paper. The
//! contract of that refactor is *observational equivalence*: on any
//! program, under any semantics/strategy/plan configuration, the two
//! machines must produce
//!
//! * the same answer (value, `errorRT`, `errorSC`, contract violation —
//!   compared by full rendering, which includes blame labels, violation
//!   witnesses, and function names),
//! * the same console output, and
//! * the same *semantic* monitor counters: `applications`,
//!   `monitored_calls`, `checks`, and `static_skips`. (Representation-
//!   bound counters — `steps`, continuation high-water marks,
//!   `env_frames_allocated` — legitimately differ: steps count IR
//!   instructions on one side and CEK transitions on the other.)
//!
//! Coverage: the whole Figure-10 workload corpus (all four bench setups
//! plus call-sequence collection), all 28 Table 1 programs under both
//! table strategies, every diverging program (identical violation and
//! blame), and a seeded random-program sweep whose generator exercises
//! closures (captured, mutated, `letrec`-recursive), shadowing, variadic
//! lambdas, `apply`, contracts, and `terminating/c` extents. Generated
//! programs run fully monitored, so Theorem 3.1 guarantees termination
//! without a fuel bound (a fuel bound would itself diverge between the
//! machines, since their step granularities differ).

use proptest::prelude::*;
use sct_contracts::corpus::workloads::Lcg;
use sct_contracts::corpus::{diverging, table1, workloads};
use sct_contracts::interp::reference;
use sct_contracts::{
    plan_program, EvalError, Machine, MachineConfig, PlanConfig, SemanticsMode, TableStrategy,
    Value,
};
use std::rc::Rc;
use std::time::Duration;

/// One rendered outcome: the full display of the answer (blame labels and
/// witnesses included), the console output, and the semantic counters.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    answer: String,
    output: String,
    applications: u64,
    monitored_calls: u64,
    checks: u64,
    static_skips: u64,
    violations: Vec<String>,
}

fn render(r: &Result<Value, EvalError>) -> String {
    match r {
        Ok(v) => format!("ok: {}", v.to_write_string()),
        Err(e) => format!("err: {e}"),
    }
}

fn run_vm(prog: &sct_contracts::lang::ast::Program, config: MachineConfig) -> Outcome {
    let mut m = Machine::new(prog, config);
    let r = m.run();
    Outcome {
        answer: render(&r),
        output: m.output.clone(),
        applications: m.stats.applications,
        monitored_calls: m.stats.monitored_calls,
        checks: m.stats.checks,
        static_skips: m.stats.static_skips,
        violations: m.violations.iter().map(|v| v.to_string()).collect(),
    }
}

fn run_reference(prog: &sct_contracts::lang::ast::Program, config: MachineConfig) -> Outcome {
    let mut m = reference::Machine::new(prog, config);
    let r = m.run();
    Outcome {
        answer: render(&r),
        output: m.output.clone(),
        applications: m.stats.applications,
        monitored_calls: m.stats.monitored_calls,
        checks: m.stats.checks,
        static_skips: m.stats.static_skips,
        violations: m.violations.iter().map(|v| v.to_string()).collect(),
    }
}

/// Runs `source` through both machines under `config` and asserts (or,
/// for the proptest driver, returns) outcome equality.
fn outcomes(source: &str, config: &MachineConfig) -> (Outcome, Outcome) {
    let prog = sct_contracts::lang::compile_program(source)
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{source}"));
    (
        run_vm(&prog, config.clone()),
        run_reference(&prog, config.clone()),
    )
}

fn assert_agree(source: &str, config: &MachineConfig, what: &str) {
    let (vm, reference) = outcomes(source, config);
    assert_eq!(vm, reference, "{what}:\n{source}");
}

/// A fast plan configuration (see `tests/hybrid.rs`): plan *quality* is
/// irrelevant to machine agreement — anything unproven stays monitored.
fn quick_plan_config() -> PlanConfig {
    let mut cfg = PlanConfig::default();
    cfg.verify.exec.step_budget = 30_000;
    cfg.time_budget = Some(Duration::from_millis(200));
    cfg
}

// ---------------------------------------------------------------------
// Corpus sweeps.
// ---------------------------------------------------------------------

/// Every Figure-10 workload, whole-program (body + a small entry call
/// appended), under unchecked, both monitored strategies, the hybrid
/// plan, and call-sequence collection.
#[test]
fn fig10_corpus_agrees_under_every_setup() {
    for w in workloads::fig10() {
        let n: u64 = match w.id {
            "ack" => 16,
            "msort" | "interp-msort" => 48,
            _ => 60,
        };
        let args: Vec<String> = (w.make_args)(n)
            .iter()
            .map(|v| {
                let s = v.to_write_string();
                if s.starts_with('(') {
                    format!("'{s}")
                } else {
                    s
                }
            })
            .collect();
        let source = format!("{}\n({} {})", w.source, w.entry, args.join(" "));
        let prog = sct_contracts::lang::compile_program(&source).expect("workload compiles");
        let plan = Rc::new(plan_program(&prog, &quick_plan_config()));
        let configs: Vec<(&str, MachineConfig)> = vec![
            ("unchecked", MachineConfig::standard()),
            (
                "cm",
                MachineConfig {
                    order: w.order.handle(),
                    ..MachineConfig::monitored(TableStrategy::ContinuationMark)
                },
            ),
            (
                "imperative",
                MachineConfig {
                    order: w.order.handle(),
                    ..MachineConfig::monitored(TableStrategy::Imperative)
                },
            ),
            (
                "hybrid",
                MachineConfig {
                    order: w.order.handle(),
                    plan: Some(plan.clone()),
                    ..MachineConfig::monitored(TableStrategy::Imperative)
                },
            ),
            (
                "callseq",
                MachineConfig {
                    mode: SemanticsMode::CallSeqCollect,
                    order: w.order.handle(),
                    ..MachineConfig::default()
                },
            ),
        ];
        for (label, config) in configs {
            let (vm, reference) = outcomes(&source, &config);
            assert_eq!(vm, reference, "{} under {label}", w.id);
        }
    }
}

/// All 28 Table 1 programs under both table strategies (values and
/// answers, monitored end to end).
#[test]
fn table1_corpus_agrees_under_both_strategies() {
    for p in table1::all() {
        for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
            let config = MachineConfig {
                order: p.order.handle(),
                ..MachineConfig::monitored(strategy)
            };
            assert_agree(p.source, &config, p.id);
        }
    }
}

/// Every diverging program is caught by both machines with the *same*
/// violation witness, function name, and blame label.
#[test]
fn diverging_corpus_agrees_on_blame() {
    for p in diverging::all() {
        let config = MachineConfig {
            order: p.order.handle(),
            ..MachineConfig::monitored(TableStrategy::Imperative)
        };
        let (vm, reference) = outcomes(p.source, &config);
        assert_eq!(vm, reference, "{}", p.id);
        assert!(
            vm.answer.contains("termination contract violation"),
            "{}: expected errorSC, got {}",
            p.id,
            vm.answer
        );
    }
}

// ---------------------------------------------------------------------
// Seeded random-program sweep.
// ---------------------------------------------------------------------

/// Random well-formed λSCT program generator. Driven by the corpus LCG so
/// every case reproduces from its seed. The grammar deliberately leans on
/// the constructs whose compilation is subtle: captured-and-mutated
/// locals (assignment conversion), `letrec` closures (cell captures),
/// shadowing `let`s (slot reuse), variadic lambdas, `apply`, first-class
/// lambdas flowing to helpers (generic call sites), and `terminating/c`
/// extents (blame + table seeding).
struct Gen {
    rng: Lcg,
    fresh: u32,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: Lcg::new(seed),
            fresh: 0,
        }
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.rng.next_u64() % n
    }

    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        format!("v{}", self.fresh)
    }

    /// An atomic expression over the variables in scope.
    fn atom(&mut self, scope: &[String], globals: &[String]) -> String {
        match self.pick(6) {
            0 | 1 if !scope.is_empty() => {
                let i = self.pick(scope.len() as u64) as usize;
                scope[i].clone()
            }
            2 if !globals.is_empty() => {
                let i = self.pick(globals.len() as u64) as usize;
                globals[i].clone()
            }
            3 => "'()".to_string(),
            4 => format!("{}", self.pick(5)),
            _ => format!("{}", self.pick(3) + 1),
        }
    }

    /// An expression of bounded depth over the variables in scope.
    fn expr(&mut self, depth: u32, scope: &[String], globals: &[String]) -> String {
        if depth == 0 {
            return self.atom(scope, globals);
        }
        let d = depth - 1;
        match self.pick(14) {
            0 => {
                let a = self.expr(d, scope, globals);
                let b = self.expr(d, scope, globals);
                let op = ["+", "-", "*"][self.pick(3) as usize];
                format!("({op} {a} {b})")
            }
            1 => {
                let a = self.expr(d, scope, globals);
                let b = self.expr(d, scope, globals);
                format!("(cons {a} {b})")
            }
            2 => {
                // May be a run-time type error on non-pairs: both machines
                // must produce the identical errorRT.
                let a = self.expr(d, scope, globals);
                let op = ["car", "cdr"][self.pick(2) as usize];
                format!("({op} {a})")
            }
            3 => {
                let c = self.expr(d, scope, globals);
                let t = self.expr(d, scope, globals);
                let e = self.expr(d, scope, globals);
                let p = ["zero?", "null?", "pair?"][self.pick(3) as usize];
                format!("(if ({p} {c}) {t} {e})")
            }
            4 => {
                // let with shadow-prone bindings (slot reuse on the VM).
                let x = self.fresh_var();
                let y = self.fresh_var();
                let ix = self.expr(d, scope, globals);
                let iy = self.expr(d, scope, globals);
                let mut inner = scope.to_vec();
                inner.push(x.clone());
                inner.push(y.clone());
                let body = self.expr(d, &inner, globals);
                format!("(let ([{x} {ix}] [{y} {iy}]) {body})")
            }
            5 => {
                // Immediately applied lambda capturing the scope.
                let v = self.fresh_var();
                let arg = self.expr(d, scope, globals);
                let mut inner = scope.to_vec();
                inner.push(v.clone());
                let body = self.expr(d, &inner, globals);
                format!("((lambda ({v}) {body}) {arg})")
            }
            6 => {
                // Mutated captured binding: assignment conversion.
                let x = self.fresh_var();
                let init = self.expr(d, scope, globals);
                let mut inner = scope.to_vec();
                inner.push(x.clone());
                let delta = self.expr(d, &inner, globals);
                let body = self.expr(d, &inner, globals);
                format!("(let ([{x} {init}]) (begin ((lambda () (set! {x} {delta}))) {body}))")
            }
            7 => {
                // letrec with a self-recursive, structurally descending
                // loop (cell capture; monitored but terminating).
                let f = self.fresh_var();
                let n = self.fresh_var();
                let mut inner = scope.to_vec();
                inner.push(n.clone());
                let base = self.expr(d, &inner, globals);
                let acc = self.expr(d, &inner, globals);
                let arg = self.pick(4) + 1;
                format!(
                    "(letrec ([{f} (lambda ({n}) (if (zero? {n}) {base} (+ {acc} ({f} (- {n} 1)))))]) ({f} {arg}))"
                )
            }
            8 => {
                let parts: Vec<String> = (0..=self.pick(2) + 1)
                    .map(|_| self.expr(d, scope, globals))
                    .collect();
                format!("(begin {})", parts.join(" "))
            }
            9 => {
                // Variadic lambda + rest list.
                let v = self.fresh_var();
                let args: Vec<String> = (0..self.pick(3))
                    .map(|_| self.expr(d, scope, globals))
                    .collect();
                format!("((lambda {v} (length {v})) {})", args.join(" "))
            }
            10 => {
                // apply with a constructed argument list.
                let a = self.expr(d, scope, globals);
                let b = self.expr(d, scope, globals);
                format!("(apply + (list {a} {b}))")
            }
            11 if !globals.is_empty() => {
                // Call a previously defined global (specialized site).
                let g = &globals[self.pick(globals.len() as u64) as usize];
                let a = self.expr(d, scope, globals);
                format!("({g} {a})")
            }
            12 => {
                // terminating/c extent around a closure, applied once.
                let v = self.fresh_var();
                let mut inner = scope.to_vec();
                inner.push(v.clone());
                let body = self.expr(d, &inner, globals);
                let arg = self.expr(d, scope, globals);
                format!("((terminating/c (lambda ({v}) {body})) {arg})")
            }
            _ => self.atom(scope, globals),
        }
    }

    /// A whole program: helper defines (arity 1, descending recursion with
    /// a generated base/step so they are callable from later code), then
    /// one top-level expression.
    fn program(&mut self, seed_tag: u64) -> String {
        let mut globals: Vec<String> = Vec::new();
        let mut out = String::new();
        let defines = self.pick(3);
        for i in 0..defines {
            let name = format!("g{seed_tag}_{i}");
            let param = self.fresh_var();
            let scope = vec![param.clone()];
            let base = self.expr(1, &scope, &globals);
            let step = self.expr(2, &scope, &globals);
            out.push_str(&format!(
                "(define ({name} {param}) (if (zero? {param}) {base} (+ {step} ({name} (- {param} 1)))))\n"
            ));
            globals.push(name);
        }
        let body = self.expr(3, &[], &globals);
        out.push_str(&body);
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generated programs agree under both monitored strategies and under
    /// the hybrid plan. Monitoring guarantees termination (Theorem 3.1),
    /// so no fuel bound is needed — and none is wanted, since the two
    /// machines count steps at different granularities.
    #[test]
    fn generated_programs_agree(seed in any::<u64>()) {
        let source = Gen::new(seed).program(seed % 1000);
        let prog = match sct_contracts::lang::compile_program(&source) {
            Ok(p) => p,
            Err(e) => panic!("generator produced an uncompilable program: {e}\n{source}"),
        };
        for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
            let config = MachineConfig::monitored(strategy);
            let vm = run_vm(&prog, config.clone());
            let reference = run_reference(&prog, config);
            prop_assert_eq!(&vm, &reference, "strategy {:?}\n{}", strategy, &source);
        }
        let plan = Rc::new(plan_program(&prog, &quick_plan_config()));
        let config = MachineConfig {
            plan: Some(plan),
            ..MachineConfig::monitored(TableStrategy::Imperative)
        };
        let vm = run_vm(&prog, config.clone());
        let reference = run_reference(&prog, config);
        prop_assert_eq!(&vm, &reference, "hybrid\n{}", &source);
    }
}

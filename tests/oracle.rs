//! Differential oracle: the flat-IR dispatch VM ≡ the reference
//! tree-walking CEK machine.
//!
//! PR 5 replaced the evaluator under every regime of the paper. The
//! contract of that refactor is *observational equivalence*: on any
//! program, under any semantics/strategy/plan configuration, the two
//! machines must produce
//!
//! * the same answer (value, `errorRT`, `errorSC`, contract violation —
//!   compared by full rendering, which includes blame labels, violation
//!   witnesses, and function names),
//! * the same console output, and
//! * the same *semantic* monitor counters: `applications`,
//!   `monitored_calls`, `checks`, and `static_skips`. (Representation-
//!   bound counters — `steps`, continuation high-water marks,
//!   `env_frames_allocated` — legitimately differ: steps count IR
//!   instructions on one side and CEK transitions on the other.)
//!
//! Coverage: the whole Figure-10 workload corpus (all four bench setups
//! plus call-sequence collection), all 28 Table 1 programs under both
//! table strategies, every diverging program (identical violation and
//! blame), and a seeded random-program sweep whose generator — the
//! [`sct_fuzz::ExprGen`] module shared with the `sct fuzz` campaign, so
//! the oracle sweep and the fuzzer grow coverage in one place — exercises
//! closures (captured, mutated, `letrec`-recursive), shadowing, variadic
//! lambdas, `apply`, contracts, and `terminating/c` extents. Generated
//! programs run fully monitored, so Theorem 3.1 guarantees termination
//! without a fuel bound (a fuel bound would itself diverge between the
//! machines, since their step granularities differ).
//!
//! Since PR 8 every differential case additionally runs the VM twice —
//! polymorphic inline caches enabled and disabled — asserting the two
//! runs produce identical values, output, blame, and semantic counters,
//! and that `pic_hits + pic_misses` accounts for every `Generic`-site
//! application. The caches are a pure dispatch optimization; any
//! divergence they introduce is an enforcement-soundness bug.

use proptest::prelude::*;
use sct_contracts::corpus::{diverging, table1, workloads};
use sct_contracts::{plan_program, MachineConfig, PlanConfig, SemanticsMode, TableStrategy};
use sct_fuzz::harness::{assert_pic_transparent, run_reference, run_vm_stats, Outcome};
use sct_fuzz::ExprGen;
use std::rc::Rc;
use std::time::Duration;

/// Runs `source` through both machines under `config` and asserts (or,
/// for the proptest driver, returns) outcome equality. Every case runs
/// the VM *twice* — inline caches enabled and disabled — and asserts the
/// two runs agree on values, output, blame, and the semantic counters,
/// with `pic_hits + pic_misses` accounting for every `Generic`-site
/// application (see `assert_pic_transparent`).
fn outcomes(source: &str, config: &MachineConfig) -> (Outcome, Outcome) {
    let prog = sct_contracts::lang::compile_program(source)
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{source}"));
    (
        assert_pic_transparent(&prog, config, "oracle case"),
        run_reference(&prog, config.clone()),
    )
}

fn assert_agree(source: &str, config: &MachineConfig, what: &str) {
    let (vm, reference) = outcomes(source, config);
    assert_eq!(vm, reference, "{what}:\n{source}");
}

/// A fast plan configuration (see `tests/hybrid.rs`): plan *quality* is
/// irrelevant to machine agreement — anything unproven stays monitored.
fn quick_plan_config() -> PlanConfig {
    let mut cfg = PlanConfig::default();
    cfg.verify.exec.step_budget = 30_000;
    cfg.time_budget = Some(Duration::from_millis(200));
    cfg
}

// ---------------------------------------------------------------------
// Corpus sweeps.
// ---------------------------------------------------------------------

/// Every Figure-10 workload, whole-program (body + a small entry call
/// appended), under unchecked, both monitored strategies, the hybrid
/// plan, and call-sequence collection.
#[test]
fn fig10_corpus_agrees_under_every_setup() {
    for w in workloads::fig10() {
        let n: u64 = match w.id {
            "ack" => 16,
            "msort" | "interp-msort" => 48,
            _ => 60,
        };
        let args: Vec<String> = (w.make_args)(n)
            .iter()
            .map(|v| {
                let s = v.to_write_string();
                if s.starts_with('(') {
                    format!("'{s}")
                } else {
                    s
                }
            })
            .collect();
        let source = format!("{}\n({} {})", w.source, w.entry, args.join(" "));
        let prog = sct_contracts::lang::compile_program(&source).expect("workload compiles");
        let plan = Rc::new(plan_program(&prog, &quick_plan_config()));
        let configs: Vec<(&str, MachineConfig)> = vec![
            ("unchecked", MachineConfig::standard()),
            (
                "cm",
                MachineConfig {
                    order: w.order.handle(),
                    ..MachineConfig::monitored(TableStrategy::ContinuationMark)
                },
            ),
            (
                "imperative",
                MachineConfig {
                    order: w.order.handle(),
                    ..MachineConfig::monitored(TableStrategy::Imperative)
                },
            ),
            (
                "hybrid",
                MachineConfig {
                    order: w.order.handle(),
                    plan: Some(plan.clone()),
                    ..MachineConfig::monitored(TableStrategy::Imperative)
                },
            ),
            (
                "callseq",
                MachineConfig {
                    mode: SemanticsMode::CallSeqCollect,
                    order: w.order.handle(),
                    ..MachineConfig::default()
                },
            ),
        ];
        for (label, config) in configs {
            let (vm, reference) = outcomes(&source, &config);
            assert_eq!(vm, reference, "{} under {label}", w.id);
        }
    }
}

/// All 28 Table 1 programs under both table strategies (values and
/// answers, monitored end to end).
#[test]
fn table1_corpus_agrees_under_both_strategies() {
    for p in table1::all() {
        for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
            let config = MachineConfig {
                order: p.order.handle(),
                ..MachineConfig::monitored(strategy)
            };
            assert_agree(p.source, &config, p.id);
        }
    }
}

/// Every diverging program is caught by both machines with the *same*
/// violation witness, function name, and blame label.
#[test]
fn diverging_corpus_agrees_on_blame() {
    for p in diverging::all() {
        let config = MachineConfig {
            order: p.order.handle(),
            ..MachineConfig::monitored(TableStrategy::Imperative)
        };
        let (vm, reference) = outcomes(p.source, &config);
        assert_eq!(vm, reference, "{}", p.id);
        assert!(
            vm.answer.contains("termination contract violation"),
            "{}: expected errorSC, got {}",
            p.id,
            vm.answer
        );
    }
}

// ---------------------------------------------------------------------
// PIC transparency.
// ---------------------------------------------------------------------

/// A megamorphic first-class call site — one `Generic` site dispatching
/// to five distinct callees, overflowing the 4-way cache — plus a `set!`
/// rebinding mid-run: the canonical PIC fill/overflow/invalidation
/// shapes, checked on top of the per-case transparency sweep that
/// [`outcomes`] already applies everywhere. Counter arithmetic is
/// asserted exactly: every generic-site application is a hit or a miss,
/// and a `set!` of a monitored global forces re-resolution (stamp
/// invalidation) rather than a silently stale fast path.
#[test]
fn pic_on_off_outcomes_agree_and_counters_reconcile() {
    let source = r#"
(define (f1 n) (if (zero? n) 0 (f1 (- n 1))))
(define (f2 n) (if (zero? n) 0 (f2 (- n 1))))
(define (f3 n) (if (zero? n) 1 (f3 (- n 1))))
(define (f4 n) (if (zero? n) 1 (f4 (- n 1))))
(define (f5 n) (if (zero? n) 2 (f5 (- n 1))))
(define (call f n) (f n))
(define (sweep k)
  (if (zero? k)
      0
      (+ (call f1 k) (call f2 k) (call f3 k) (call f4 k) (call f5 k)
         (sweep (- k 1)))))
(display (sweep 12))
(set! f3 f5)
(display (sweep 12))
"#;
    let prog = sct_contracts::lang::compile_program(source).expect("compiles");
    for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
        let config = MachineConfig::monitored(strategy);
        let vm = assert_pic_transparent(&prog, &config, "megamorphic sweep");
        let reference = run_reference(&prog, config.clone());
        assert_eq!(vm, reference, "megamorphic sweep under {strategy:?}");
        let (_, stats) = run_vm_stats(&prog, config);
        assert!(
            stats.generic_calls > 0,
            "the sweep must exercise generic sites"
        );
        assert_eq!(
            stats.pic_hits + stats.pic_misses,
            stats.generic_calls,
            "every generic-site application is a hit or a miss"
        );
        assert!(
            stats.pic_misses >= 5,
            "five distinct callees through one site cannot all hit"
        );
        assert!(
            stats.pic_invalidations > 0,
            "the set! rebinding must invalidate cached entries"
        );
    }
}

// ---------------------------------------------------------------------
// Seeded random-program sweep.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generated programs agree under both monitored strategies and under
    /// the hybrid plan. Monitoring guarantees termination (Theorem 3.1),
    /// so no fuel bound is needed — and none is wanted, since the two
    /// machines count steps at different granularities.
    #[test]
    fn generated_programs_agree(seed in any::<u64>()) {
        let source = ExprGen::new(seed).program(seed % 1000);
        let prog = match sct_contracts::lang::compile_program(&source) {
            Ok(p) => p,
            Err(e) => panic!("generator produced an uncompilable program: {e}\n{source}"),
        };
        for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
            let config = MachineConfig::monitored(strategy);
            let vm = assert_pic_transparent(&prog, &config, "generated");
            let reference = run_reference(&prog, config);
            prop_assert_eq!(&vm, &reference, "strategy {:?}\n{}", strategy, &source);
        }
        let plan = Rc::new(plan_program(&prog, &quick_plan_config()));
        let config = MachineConfig {
            plan: Some(plan),
            ..MachineConfig::monitored(TableStrategy::Imperative)
        };
        let vm = assert_pic_transparent(&prog, &config, "generated hybrid");
        let reference = run_reference(&prog, config);
        prop_assert_eq!(&vm, &reference, "hybrid\n{}", &source);
    }
}

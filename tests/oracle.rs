//! Differential oracle: the flat-IR dispatch VM ≡ the reference
//! tree-walking CEK machine.
//!
//! PR 5 replaced the evaluator under every regime of the paper. The
//! contract of that refactor is *observational equivalence*: on any
//! program, under any semantics/strategy/plan configuration, the two
//! machines must produce
//!
//! * the same answer (value, `errorRT`, `errorSC`, contract violation —
//!   compared by full rendering, which includes blame labels, violation
//!   witnesses, and function names),
//! * the same console output, and
//! * the same *semantic* monitor counters: `applications`,
//!   `monitored_calls`, `checks`, and `static_skips`. (Representation-
//!   bound counters — `steps`, continuation high-water marks,
//!   `env_frames_allocated` — legitimately differ: steps count IR
//!   instructions on one side and CEK transitions on the other.)
//!
//! Coverage: the whole Figure-10 workload corpus (all four bench setups
//! plus call-sequence collection), all 28 Table 1 programs under both
//! table strategies, every diverging program (identical violation and
//! blame), and a seeded random-program sweep whose generator — the
//! [`sct_fuzz::ExprGen`] module shared with the `sct fuzz` campaign, so
//! the oracle sweep and the fuzzer grow coverage in one place — exercises
//! closures (captured, mutated, `letrec`-recursive), shadowing, variadic
//! lambdas, `apply`, contracts, and `terminating/c` extents. Generated
//! programs run fully monitored, so Theorem 3.1 guarantees termination
//! without a fuel bound (a fuel bound would itself diverge between the
//! machines, since their step granularities differ).

use proptest::prelude::*;
use sct_contracts::corpus::{diverging, table1, workloads};
use sct_contracts::{plan_program, MachineConfig, PlanConfig, SemanticsMode, TableStrategy};
use sct_fuzz::harness::{run_reference, run_vm, Outcome};
use sct_fuzz::ExprGen;
use std::rc::Rc;
use std::time::Duration;

/// Runs `source` through both machines under `config` and asserts (or,
/// for the proptest driver, returns) outcome equality.
fn outcomes(source: &str, config: &MachineConfig) -> (Outcome, Outcome) {
    let prog = sct_contracts::lang::compile_program(source)
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{source}"));
    (
        run_vm(&prog, config.clone()),
        run_reference(&prog, config.clone()),
    )
}

fn assert_agree(source: &str, config: &MachineConfig, what: &str) {
    let (vm, reference) = outcomes(source, config);
    assert_eq!(vm, reference, "{what}:\n{source}");
}

/// A fast plan configuration (see `tests/hybrid.rs`): plan *quality* is
/// irrelevant to machine agreement — anything unproven stays monitored.
fn quick_plan_config() -> PlanConfig {
    let mut cfg = PlanConfig::default();
    cfg.verify.exec.step_budget = 30_000;
    cfg.time_budget = Some(Duration::from_millis(200));
    cfg
}

// ---------------------------------------------------------------------
// Corpus sweeps.
// ---------------------------------------------------------------------

/// Every Figure-10 workload, whole-program (body + a small entry call
/// appended), under unchecked, both monitored strategies, the hybrid
/// plan, and call-sequence collection.
#[test]
fn fig10_corpus_agrees_under_every_setup() {
    for w in workloads::fig10() {
        let n: u64 = match w.id {
            "ack" => 16,
            "msort" | "interp-msort" => 48,
            _ => 60,
        };
        let args: Vec<String> = (w.make_args)(n)
            .iter()
            .map(|v| {
                let s = v.to_write_string();
                if s.starts_with('(') {
                    format!("'{s}")
                } else {
                    s
                }
            })
            .collect();
        let source = format!("{}\n({} {})", w.source, w.entry, args.join(" "));
        let prog = sct_contracts::lang::compile_program(&source).expect("workload compiles");
        let plan = Rc::new(plan_program(&prog, &quick_plan_config()));
        let configs: Vec<(&str, MachineConfig)> = vec![
            ("unchecked", MachineConfig::standard()),
            (
                "cm",
                MachineConfig {
                    order: w.order.handle(),
                    ..MachineConfig::monitored(TableStrategy::ContinuationMark)
                },
            ),
            (
                "imperative",
                MachineConfig {
                    order: w.order.handle(),
                    ..MachineConfig::monitored(TableStrategy::Imperative)
                },
            ),
            (
                "hybrid",
                MachineConfig {
                    order: w.order.handle(),
                    plan: Some(plan.clone()),
                    ..MachineConfig::monitored(TableStrategy::Imperative)
                },
            ),
            (
                "callseq",
                MachineConfig {
                    mode: SemanticsMode::CallSeqCollect,
                    order: w.order.handle(),
                    ..MachineConfig::default()
                },
            ),
        ];
        for (label, config) in configs {
            let (vm, reference) = outcomes(&source, &config);
            assert_eq!(vm, reference, "{} under {label}", w.id);
        }
    }
}

/// All 28 Table 1 programs under both table strategies (values and
/// answers, monitored end to end).
#[test]
fn table1_corpus_agrees_under_both_strategies() {
    for p in table1::all() {
        for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
            let config = MachineConfig {
                order: p.order.handle(),
                ..MachineConfig::monitored(strategy)
            };
            assert_agree(p.source, &config, p.id);
        }
    }
}

/// Every diverging program is caught by both machines with the *same*
/// violation witness, function name, and blame label.
#[test]
fn diverging_corpus_agrees_on_blame() {
    for p in diverging::all() {
        let config = MachineConfig {
            order: p.order.handle(),
            ..MachineConfig::monitored(TableStrategy::Imperative)
        };
        let (vm, reference) = outcomes(p.source, &config);
        assert_eq!(vm, reference, "{}", p.id);
        assert!(
            vm.answer.contains("termination contract violation"),
            "{}: expected errorSC, got {}",
            p.id,
            vm.answer
        );
    }
}

// ---------------------------------------------------------------------
// Seeded random-program sweep.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generated programs agree under both monitored strategies and under
    /// the hybrid plan. Monitoring guarantees termination (Theorem 3.1),
    /// so no fuel bound is needed — and none is wanted, since the two
    /// machines count steps at different granularities.
    #[test]
    fn generated_programs_agree(seed in any::<u64>()) {
        let source = ExprGen::new(seed).program(seed % 1000);
        let prog = match sct_contracts::lang::compile_program(&source) {
            Ok(p) => p,
            Err(e) => panic!("generator produced an uncompilable program: {e}\n{source}"),
        };
        for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
            let config = MachineConfig::monitored(strategy);
            let vm = run_vm(&prog, config.clone());
            let reference = run_reference(&prog, config);
            prop_assert_eq!(&vm, &reference, "strategy {:?}\n{}", strategy, &source);
        }
        let plan = Rc::new(plan_program(&prog, &quick_plan_config()));
        let config = MachineConfig {
            plan: Some(plan),
            ..MachineConfig::monitored(TableStrategy::Imperative)
        };
        let vm = run_vm(&prog, config.clone());
        let reference = run_reference(&prog, config);
        prop_assert_eq!(&vm, &reference, "hybrid\n{}", &source);
    }
}

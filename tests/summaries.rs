//! The contract-summary soundness oracle: planning with verified-callee
//! stubbing enabled must produce plans *structurally equal* (decision,
//! guard, covers, blame, and detail — everything but timing) to planning
//! with full body descent, across
//!
//! * the Figure-10 workload corpus (each workload alone and the
//!   fig10-scale ten-define composite, with and without signature pins),
//! * a 128-case seeded sweep of the fuzz generator's schemas (the same
//!   `sct_fuzz::gen_case` space the `sct fuzz` campaign patrols — its
//!   `summary-mismatch` differential runs this check on every fuzzed
//!   case forever after).
//!
//! Equality rather than mere agreement-on-verdict is deliberate: the
//! summary machinery is a pure optimization of *how* the verifier reaches
//! a decision, so any observable drift — a different rung, different
//! covers, different blame — is a bug in the stubbing soundness
//! conditions, not an acceptable improvement. (One known, pinned
//! exception class exists where modular proofs are strictly stronger than
//! whole-body descent; see `stub_proofs_are_never_weaker_than_descent`
//! in `sct-symbolic`. The corpora here are the shapes the system
//! supports, and on them the plans are bit-identical.)

use sct_cache::MemStore;
use sct_contracts::{plan_program_incremental, PlanCache, PlanConfig, SymDomain};
use sct_core::plan::EnforcementPlan;
use sct_corpus::workloads;
use sct_fuzz::gen_case;

/// Plans `source` twice — summaries on (against a fresh `MemStore`, so
/// the in-pass table *and* the persisted round-trip are exercised) and
/// summaries off — and returns both plans.
fn plan_both(source: &str, base: &PlanConfig) -> (EnforcementPlan, EnforcementPlan) {
    let prog = sct_lang::compile_program(source).expect(source);
    let on_cfg = PlanConfig {
        summaries: true,
        ..base.clone()
    };
    let off_cfg = PlanConfig {
        summaries: false,
        ..base.clone()
    };
    let mut store = MemStore::new();
    let (on, _) = plan_program_incremental(&prog, &on_cfg, &mut PlanCache::new(), &mut store);
    // A second summaries-on pass against the now-warm store: every
    // decision hits, and stubbing for any *edited* caller would come from
    // the persisted summaries. Here nothing changed, so it must replay.
    let (replay, _) = plan_program_incremental(&prog, &on_cfg, &mut PlanCache::new(), &mut store);
    assert!(
        on.structurally_eq(&replay),
        "warm summary replay drifted:\n{source}"
    );
    let (off, _) =
        plan_program_incremental(&prog, &off_cfg, &mut PlanCache::new(), &mut MemStore::new());
    (on, off)
}

fn assert_modes_agree(source: &str, base: &PlanConfig, tag: &str) {
    let (on, off) = plan_both(source, base);
    assert!(
        on.structurally_eq(&off),
        "{tag}: summary-stubbed plan differs from full descent\n\
         with summaries: {on}\nfull descent:  {off}\nprogram:\n{source}"
    );
}

/// A fig10-scale composite: every direct Figure-10 workload's defines in
/// one program, so cross-define applications (merge-sort's helpers, the
/// interpreters' dispatch) plan against already-summarized callees.
fn fig10_composite() -> String {
    workloads::fig10()
        .iter()
        .filter(|w| !w.id.starts_with("interp"))
        .map(|w| w.source.as_str())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fig10_workloads_plan_identically_with_summaries() {
    for w in workloads::fig10() {
        assert_modes_agree(&w.source, &PlanConfig::default(), w.id);
    }
}

#[test]
fn fig10_workloads_with_signature_pins_plan_identically() {
    for w in workloads::fig10() {
        let mut cfg = PlanConfig::default();
        if let Some((params, result)) = w.sig {
            let to_sym = |d: &sct_corpus::Domain| match d {
                sct_corpus::Domain::Nat => SymDomain::Nat,
                sct_corpus::Domain::Pos => SymDomain::Pos,
                sct_corpus::Domain::Int => SymDomain::Int,
                sct_corpus::Domain::List => SymDomain::List,
                sct_corpus::Domain::Any => SymDomain::Any,
            };
            cfg.signatures.insert(
                w.entry.to_string(),
                (params.iter().map(to_sym).collect(), to_sym(&result)),
            );
        }
        assert_modes_agree(&w.source, &cfg, w.id);
    }
}

#[test]
fn fig10_composite_plans_identically_with_summaries() {
    assert_modes_agree(
        &fig10_composite(),
        &PlanConfig::default(),
        "fig10-composite",
    );
}

/// The committed `BENCH_plan.json` artifact must carry the scaling
/// story the summary subsystem exists to win: schema `sct-plan-bench/1`,
/// a ≥5× cold-plan speedup on the smallest corpus, warm and
/// summaries-on planning beating full descent at every size, and
/// sub-quadratic cold-plan growth across corpus sizes.
#[test]
fn committed_plan_bench_artifact_pins_summary_speedup() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_plan.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_plan.json at the repo root");
    let doc = sct_contracts::core::json::parse(&text).expect("artifact parses");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("sct-plan-bench/1"),
        "schema drifted"
    );
    let corpora = doc
        .get("corpora")
        .and_then(|c| c.as_arr())
        .expect("corpora array present");
    assert!(!corpora.is_empty());
    let mut prev: Option<(f64, f64)> = None;
    for (i, c) in corpora.iter().enumerate() {
        let defines = c.get("defines").and_then(|v| v.as_f64()).unwrap();
        let summary = c.get("cold_summary_ms").and_then(|v| v.as_f64()).unwrap();
        let warm = c.get("warm_ms").and_then(|v| v.as_f64()).unwrap();
        assert!(
            summary > 0.0 && warm > 0.0,
            "{defines}: non-positive timings"
        );
        if let Some(full) = c.get("cold_full_ms").and_then(|v| v.as_f64()) {
            assert!(
                summary < full && warm < full,
                "{defines} defines: summaries ({summary}ms) or warm ({warm}ms) \
                 not faster than full descent ({full}ms)"
            );
            if i == 0 {
                let speedup = c.get("speedup").and_then(|v| v.as_f64()).unwrap();
                assert!(speedup >= 5.0, "cold-plan speedup {speedup} below 5x");
            }
        }
        if let Some((pd, ps)) = prev {
            // Sub-quadratic: time may grow no faster than size^1.5.
            let size_ratio = defines / pd;
            let time_ratio = summary / ps;
            assert!(
                time_ratio < size_ratio.powf(1.5),
                "cold summary planning grew {time_ratio:.1}x over a \
                 {size_ratio:.1}x corpus — not sub-quadratic"
            );
        }
        prev = Some((defines, summary));
    }
}

#[test]
fn fuzz_schema_sweep_plans_identically_with_summaries() {
    // 128 seeded cases across every generator schema and mutation — the
    // same space `sct fuzz` draws from, pinned here so the invariant is
    // checked in tier-1 even without running the campaign binary.
    for seed in 0..128u64 {
        let case = gen_case(seed);
        assert_modes_agree(
            &case.source,
            &PlanConfig::default(),
            &format!("seed {seed} ({})", case.schema.name()),
        );
    }
}

//! `sct serve` end-to-end: the stdio request/response mode CI smokes, and
//! a multi-client Unix-socket stress test asserting concurrent clients
//! receive correct, *independent* blame/plan results.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sct-serve-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn sct() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sct"))
}

/// Assert a needle in a response line, with the line in the panic message.
fn assert_line(line: &str, needle: &str) {
    assert!(line.contains(needle), "wanted {needle:?} in: {line}");
}

#[test]
fn stdio_mode_answers_all_ops() {
    let mut requests: Vec<u8> = concat!(
        r#"{"op":"plan","id":1,"source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i))))"}"#,
        "\n",
        r#"{"op":"plan","id":2,"source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i))))"}"#,
        "\n",
        r#"{"op":"hybrid","id":3,"source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i)))) (sum 100 0)"}"#,
        "\n",
        r#"{"op":"run","id":4,"source":"(define f (terminating/c (lambda (x) (f x)) \"p1\")) (f 1)"}"#,
        "\n",
        "this is not json\n",
    )
    .as_bytes()
    .to_vec();
    // A line that is not even UTF-8 must get an error response, not kill
    // the session.
    requests.extend_from_slice(b"\xff\xfe not utf8\n");
    requests.extend_from_slice(
        concat!(
            r#"{"op":"stats","id":5}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n"
        )
        .as_bytes(),
    );
    let mut child = sct()
        .args(["serve", "--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning sct serve");
    child.stdin.take().unwrap().write_all(&requests).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve exited {:?}", out.status);
    let lines: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(lines.len(), 8, "one response per request: {lines:#?}");

    // Cold plan, then warm plan: misses then hits out of the warm store.
    assert_line(&lines[0], r#""id":1"#);
    assert_line(&lines[0], r#""cache":{"hits":0,"misses":1,"warm":false}"#);
    assert_line(&lines[0], r#""schema":"sct-plan/1""#);
    assert_line(&lines[1], r#""cache":{"hits":1,"misses":0,"warm":true}"#);
    // Hybrid runs with the static fast path.
    assert_line(&lines[2], r#""value":"5050""#);
    assert_line(&lines[2], r#""checks":0"#);
    // Dynamic blame, delivered as data.
    assert_line(&lines[3], r#""ok":false"#);
    assert_line(&lines[3], r#""blame":"p1""#);
    // Malformed lines (bad JSON, bad UTF-8) → error responses, session
    // continues.
    assert_line(&lines[4], r#""ok":false"#);
    assert_line(&lines[4], "bad request");
    assert_line(&lines[5], r#""ok":false"#);
    // Stats reflect the traffic.
    assert_line(&lines[6], r#""plan":2"#);
    assert_line(&lines[6], r#""errors":2"#);
    assert_line(&lines[7], r#""op":"shutdown""#);
}

/// Protocol fuzz: mutated, truncated, and overlong NDJSON lines. Every
/// non-empty line must get exactly one response — an error for the
/// malformed ones — and the session must survive all of them and still
/// answer a well-formed request at the end.
#[test]
fn stdio_mode_survives_adversarial_lines() {
    let valid =
        r#"{"op":"plan","id":1,"source":"(define (dec n) (if (zero? n) 0 (dec (- n 1))))"}"#;
    let mut lines: Vec<Vec<u8>> = Vec::new();
    // Truncations at awkward byte offsets (mid-key, mid-string, mid-escape).
    for cut in [1, 7, 20, valid.len() / 2, valid.len() - 2] {
        lines.push(valid.as_bytes()[..cut].to_vec());
    }
    // Single-byte mutations: flip one byte of the valid request to a
    // brace, a quote, a NUL, and a high bit.
    for (pos, byte) in [(2u8, b'}'), (10, b'"'), (30, 0u8), (40, 0xffu8)] {
        let mut m = valid.as_bytes().to_vec();
        m[pos as usize] = byte;
        lines.push(m);
    }
    // Structurally wrong JSON: wrong types, unknown ops, nested junk.
    for bad in [
        r#"{"op":42}"#,
        r#"{"op":"warp","id":3}"#,
        r#"{"op":"plan","id":"three","source":17}"#,
        r#"{"op":{"op":"plan"}}"#,
        r#"[1,2,3]"#,
        r#""just a string""#,
        "}}}}{{{{",
    ] {
        lines.push(bad.as_bytes().to_vec());
    }
    // An overlong line: a syntactically valid request whose source is a
    // megabyte of open parens (compile error, not a crash), plus a
    // megabyte of raw garbage.
    let huge_src = "(".repeat(1 << 20);
    lines.push(format!(r#"{{"op":"run","id":9,"source":"{huge_src}"}}"#).into_bytes());
    lines.push(vec![b'x'; 1 << 20]);
    let adversarial = lines.len();

    let mut requests: Vec<u8> = Vec::new();
    for line in &lines {
        requests.extend_from_slice(line);
        requests.push(b'\n');
    }
    // The session must still answer real work after all of that.
    requests.extend_from_slice(valid.as_bytes());
    requests.push(b'\n');
    requests.extend_from_slice(b"{\"op\":\"stats\",\"id\":99}\n{\"op\":\"shutdown\"}\n");

    let mut child = sct()
        .args(["serve", "--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning sct serve");
    child.stdin.take().unwrap().write_all(&requests).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve exited {:?}", out.status);
    let responses: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(
        responses.len(),
        adversarial + 3,
        "one response per request: {responses:#?}"
    );
    // The megabyte-of-parens request was well-formed JSON; whether it
    // compiles is the language front end's business — the daemon's
    // contract is just a response per line. Every *malformed* line must
    // be answered with ok:false.
    for (i, r) in responses[..adversarial].iter().enumerate() {
        assert_line(r, r#""ok":"#);
        if !r.contains(r#""ok":true"#) {
            assert_line(r, r#""ok":false"#);
        }
        assert!(!r.is_empty(), "empty response for adversarial line {i}");
    }
    // The trailing well-formed plan still works.
    assert_line(&responses[adversarial], r#""id":1"#);
    assert_line(&responses[adversarial], r#""ok":true"#);
    assert_line(&responses[adversarial], r#""name":"dec""#);
    assert_line(&responses[adversarial + 1], r#""id":99"#);
    assert_line(&responses[adversarial + 2], r#""op":"shutdown""#);
}

fn connect_with_retry(path: &PathBuf) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "socket {} never came up: {e}",
                    path.display()
                );
                thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn request(stream: &mut UnixStream, reader: &mut BufReader<UnixStream>, line: &str) -> String {
    writeln!(stream, "{line}").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(!response.is_empty(), "connection closed on: {line}");
    response
}

/// Many concurrent clients, each interleaving its own programs — a
/// client-specific hybrid computation, a client-specific blamed
/// divergence, and plans — over one daemon with a shared disk cache.
/// Every client must get exactly its own answers back, in order.
#[test]
fn socket_stress_concurrent_clients_get_independent_results() {
    let socket = scratch("sock").with_extension("socket");
    let cache_dir = scratch("cache");
    let mut child: Child = sct()
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--threads",
            "4",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning sct serve --socket");
    // Make sure the daemon is accepting before fanning out.
    drop(connect_with_retry(&socket));

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 4;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let socket = socket.clone();
            thread::spawn(move || {
                let mut stream = connect_with_retry(&socket);
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for round in 0..ROUNDS {
                    // A value computation unique to (client, round):
                    // sum 0..n for n = 100·(c+1)+round.
                    let n = 100 * (c as u64 + 1) + round as u64;
                    let expect = n * (n + 1) / 2;
                    let hybrid = format!(
                        r#"{{"op":"hybrid","id":{c},"source":"(define (sum{c} i a) (if (zero? i) a (sum{c} (- i 1) (+ a i)))) (sum{c} {n} 0)"}}"#
                    );
                    let resp = request(&mut stream, &mut reader, &hybrid);
                    assert_line(&resp, &format!(r#""value":"{expect}""#));
                    assert_line(&resp, &format!(r#""id":{c}"#));
                    assert_line(&resp, r#""ok":true"#);

                    // A divergence blamed with a client-specific label:
                    // the blame each client sees must be its own.
                    let spin = format!(
                        r#"{{"op":"run","source":"(define f{c} (terminating/c (lambda (x) (f{c} x)) \"party-{c}\")) (f{c} 1)"}}"#
                    );
                    let resp = request(&mut stream, &mut reader, &spin);
                    assert_line(&resp, r#""ok":false"#);
                    assert_line(&resp, &format!(r#""blame":"party-{c}""#));

                    // Plans stay well-formed under concurrency.
                    let plan = format!(
                        r#"{{"op":"plan","source":"(define (len{c} l) (if (null? l) 0 (+ 1 (len{c} (cdr l)))))"}}"#
                    );
                    let resp = request(&mut stream, &mut reader, &plan);
                    assert_line(&resp, r#""ok":true"#);
                    assert_line(&resp, &format!(r#""name":"len{c}""#));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }

    // An idle client that never sends a request and never disconnects:
    // shutdown must still terminate the daemon (its blocked read is
    // unblocked by the server closing the connection).
    let _idle = connect_with_retry(&socket);

    // A warm client replaying one of the programs hits the shared cache.
    {
        let mut stream = connect_with_retry(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let replay =
            r#"{"op":"plan","source":"(define (len0 l) (if (null? l) 0 (+ 1 (len0 (cdr l)))))"}"#;
        let resp = request(&mut stream, &mut reader, replay);
        assert_line(&resp, r#""cache":{"hits":1,"misses":0,"warm":true}"#);
        let stats = request(&mut stream, &mut reader, r#"{"op":"stats"}"#);
        assert_line(&stats, r#""ok":true"#);
        // 8 clients × 4 rounds × (1 hybrid + 1 plan) + this replay touch
        // the store; the daemon must have seen real traffic.
        assert_line(&stats, r#""workers":4"#);
        let shutdown = request(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
        assert_line(&shutdown, r#""ok":true"#);
    }

    // The daemon exits cleanly after shutdown (bounded wait, then kill).
    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        match child.try_wait().unwrap() {
            Some(status) => break Some(status),
            None if Instant::now() > deadline => break None,
            None => thread::sleep(Duration::from_millis(25)),
        }
    };
    match status {
        Some(status) => assert!(status.success(), "daemon exited {status:?}"),
        None => {
            child.kill().ok();
            panic!("daemon did not exit after shutdown");
        }
    }
    std::fs::remove_dir_all(&cache_dir).ok();
    std::fs::remove_file(&socket).ok();
}

/// The `metrics` op over the socket: a well-formed registry snapshot.
/// The self-healing counters (`shed`, `deadline_exceeded`,
/// `worker_restarts`, `quarantined`) are pre-registered, so they appear
/// even at zero, and the per-op latency histograms account for the
/// traffic that preceded the snapshot.
#[test]
fn socket_metrics_op_returns_registry_snapshot() {
    use sct_core::json::{parse, Json};

    let socket = scratch("metrics").with_extension("socket");
    let cache_dir = scratch("metrics-cache");
    let mut child: Child = sct()
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--threads",
            "2",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning sct serve --socket");
    let mut stream = connect_with_retry(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Real traffic first, so the histograms have something to show.
    let resp = request(
        &mut stream,
        &mut reader,
        r#"{"op":"hybrid","source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i)))) (sum 50 0)"}"#,
    );
    assert_line(&resp, r#""value":"1275""#);
    let resp = request(
        &mut stream,
        &mut reader,
        r#"{"op":"plan","source":"(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))"}"#,
    );
    assert_line(&resp, r#""ok":true"#);

    let line = request(&mut stream, &mut reader, r#"{"op":"metrics"}"#);
    let doc = parse(line.trim()).expect("metrics response must be well-formed JSON");
    assert_eq!(
        doc.get("ok"),
        Some(&Json::Bool(true)),
        "metrics op failed: {line}"
    );
    let metrics = doc.get("metrics").expect("metrics payload");
    let counters = metrics.get("counters").expect("counters in snapshot");
    // The self-healing story is only observable if its counters exist
    // *before* anything goes wrong — a dashboard reading zero is not the
    // same as a dashboard reading nothing.
    for key in [
        "serve.shed",
        "serve.deadline_exceeded",
        "serve.worker_restarts",
        "cache.quarantined",
    ] {
        assert!(
            counters.get(key).and_then(Json::as_i64).is_some(),
            "pre-registered counter {key} missing from snapshot: {line}"
        );
    }
    // This healthy session sheds and restarts nothing.
    assert_eq!(counters.get("serve.shed").and_then(Json::as_i64), Some(0));
    assert_eq!(
        counters.get("serve.worker_restarts").and_then(Json::as_i64),
        Some(0)
    );
    let gauges = metrics.get("gauges").expect("gauges in snapshot");
    for key in ["serve.inflight", "serve.queue_depth"] {
        assert!(
            gauges.get(key).and_then(Json::as_i64).is_some(),
            "gauge {key} missing from snapshot: {line}"
        );
    }
    let hists = metrics.get("histograms").expect("histograms in snapshot");
    for op in ["hybrid", "plan"] {
        let h = hists
            .get(&format!("serve.latency.{op}_us"))
            .unwrap_or_else(|| panic!("no latency histogram for {op}: {line}"));
        assert_eq!(
            h.get("count").and_then(Json::as_i64),
            Some(1),
            "one {op} request was served: {line}"
        );
        assert!(
            h.get("p50").and_then(Json::as_i64).is_some(),
            "a non-empty histogram reports quantiles: {line}"
        );
    }

    let shutdown = request(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
    assert_line(&shutdown, r#""ok":true"#);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success(), "daemon exited {status:?}");
                break;
            }
            None if Instant::now() > deadline => {
                child.kill().ok();
                panic!("daemon did not exit after shutdown");
            }
            None => thread::sleep(Duration::from_millis(25)),
        }
    }
    std::fs::remove_dir_all(&cache_dir).ok();
    std::fs::remove_file(&socket).ok();
}

/// Chaos run under the tracer: inject a one-shot worker panic with
/// `--faults` while `--trace-out` records the session. The daemon must
/// absorb the panic (restart the worker, answer every request), and the
/// trace file must be parseable JSONL whose spans nest correctly —
/// every `end`/`event` names a span that was `start`ed in the same
/// trace, every child's parent exists — with the per-response trace ids
/// resolving to root `serve.request` spans in the file.
#[test]
fn chaos_run_with_trace_out_emits_well_nested_jsonl() {
    use sct_core::json::{parse, Json};
    use std::collections::{HashMap, HashSet};

    let trace_path = scratch("trace").with_extension("jsonl");
    let requests = concat!(
        r#"{"op":"plan","id":1,"source":"(define (dec n) (if (zero? n) 0 (dec (- n 1))))"}"#,
        "\n",
        r#"{"op":"plan","id":2,"source":"(define (dec n) (if (zero? n) 0 (dec (- n 1))))"}"#,
        "\n",
        r#"{"op":"hybrid","id":3,"source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i)))) (sum 10 0)"}"#,
        "\n",
        r#"{"op":"metrics","id":4}"#,
        "\n",
        r#"{"op":"shutdown"}"#,
        "\n",
    );
    let mut child = sct()
        .args([
            "serve",
            "--threads",
            "2",
            "--faults",
            "seed=3;serve.pool.worker=panic*1",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning sct serve with faults and tracer");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(requests.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve exited {:?}", out.status);
    let lines: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(lines.len(), 5, "one response per request: {lines:#?}");

    // Every dispatched response echoes a 16-hex trace id.
    let mut response_traces: Vec<String> = Vec::new();
    for line in &lines {
        let doc = parse(line).expect("response is JSON");
        let trace = doc
            .get("trace")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("no trace id in response: {line}"));
        assert_eq!(trace.len(), 16, "{line}");
        assert!(trace.chars().all(|c| c.is_ascii_hexdigit()), "{line}");
        response_traces.push(trace.to_owned());
    }

    // The injected panic was absorbed: the worker restarted and the
    // session went on to answer everything, including a healthy replan.
    assert_line(&lines[1], r#""ok":true"#);
    assert_line(&lines[1], r#""name":"dec""#);
    assert_line(&lines[2], r#""value":"55""#);
    let metrics = parse(&lines[3]).expect("metrics response is JSON");
    let restarts = metrics
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("serve.worker_restarts"))
        .and_then(Json::as_i64)
        .expect("worker_restarts counter");
    assert!(restarts >= 1, "the injected panic restarted a worker");

    // The trace file: parseable JSONL, correctly nesting spans.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(!text.is_empty(), "tracer produced no events");
    let mut started: HashMap<i64, (String, String)> = HashMap::new(); // span → (trace, name)
    let mut ended: HashSet<i64> = HashSet::new();
    for line in text.lines() {
        let ev = parse(line).unwrap_or_else(|e| panic!("unparseable trace line ({e}): {line}"));
        assert!(
            ev.get("ts_us").and_then(Json::as_i64).is_some(),
            "no monotonic timestamp: {line}"
        );
        let kind = ev.get("ev").and_then(Json::as_str).expect("ev kind");
        let trace = ev.get("trace").and_then(Json::as_str).expect("trace id");
        let span = ev.get("span").and_then(Json::as_i64).expect("span id");
        let name = ev.get("name").and_then(Json::as_str).expect("span name");
        match kind {
            "start" => {
                if let Some(parent) = ev.get("parent").and_then(Json::as_i64) {
                    let (parent_trace, _) = started
                        .get(&parent)
                        .unwrap_or_else(|| panic!("parent {parent} never started: {line}"));
                    assert_eq!(parent_trace, trace, "child crossed traces: {line}");
                }
                started.insert(span, (trace.to_owned(), name.to_owned()));
            }
            "event" => {
                let (span_trace, _) = started
                    .get(&span)
                    .unwrap_or_else(|| panic!("event on unopened span: {line}"));
                assert_eq!(span_trace, trace, "event crossed traces: {line}");
            }
            "end" => {
                let (span_trace, span_name) = started
                    .get(&span)
                    .unwrap_or_else(|| panic!("end without start: {line}"));
                assert_eq!(span_trace, trace, "end crossed traces: {line}");
                assert_eq!(span_name, name, "end renamed its span: {line}");
                assert!(
                    ev.get("dur_us").and_then(Json::as_i64).is_some(),
                    "no duration on end: {line}"
                );
                assert!(ended.insert(span), "span ended twice: {line}");
            }
            other => panic!("unknown event kind {other:?}: {line}"),
        }
    }
    assert_eq!(
        started.len(),
        ended.len(),
        "every span that started also ended"
    );
    // Each response's trace id resolves to a root serve.request span.
    let root_traces: HashSet<&str> = started
        .values()
        .filter(|(_, name)| name == "serve.request")
        .map(|(trace, _)| trace.as_str())
        .collect();
    for trace in &response_traces {
        assert!(
            root_traces.contains(trace.as_str()),
            "response trace {trace} has no serve.request span in the file"
        );
    }
    std::fs::remove_file(&trace_path).ok();
}

//! `sct serve` end-to-end: the stdio request/response mode CI smokes, and
//! a multi-client Unix-socket stress test asserting concurrent clients
//! receive correct, *independent* blame/plan results.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sct-serve-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn sct() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sct"))
}

/// Assert a needle in a response line, with the line in the panic message.
fn assert_line(line: &str, needle: &str) {
    assert!(line.contains(needle), "wanted {needle:?} in: {line}");
}

#[test]
fn stdio_mode_answers_all_ops() {
    let mut requests: Vec<u8> = concat!(
        r#"{"op":"plan","id":1,"source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i))))"}"#,
        "\n",
        r#"{"op":"plan","id":2,"source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i))))"}"#,
        "\n",
        r#"{"op":"hybrid","id":3,"source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i)))) (sum 100 0)"}"#,
        "\n",
        r#"{"op":"run","id":4,"source":"(define f (terminating/c (lambda (x) (f x)) \"p1\")) (f 1)"}"#,
        "\n",
        "this is not json\n",
    )
    .as_bytes()
    .to_vec();
    // A line that is not even UTF-8 must get an error response, not kill
    // the session.
    requests.extend_from_slice(b"\xff\xfe not utf8\n");
    requests.extend_from_slice(
        concat!(
            r#"{"op":"stats","id":5}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n"
        )
        .as_bytes(),
    );
    let mut child = sct()
        .args(["serve", "--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning sct serve");
    child.stdin.take().unwrap().write_all(&requests).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve exited {:?}", out.status);
    let lines: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(lines.len(), 8, "one response per request: {lines:#?}");

    // Cold plan, then warm plan: misses then hits out of the warm store.
    assert_line(&lines[0], r#""id":1"#);
    assert_line(&lines[0], r#""cache":{"hits":0,"misses":1,"warm":false}"#);
    assert_line(&lines[0], r#""schema":"sct-plan/1""#);
    assert_line(&lines[1], r#""cache":{"hits":1,"misses":0,"warm":true}"#);
    // Hybrid runs with the static fast path.
    assert_line(&lines[2], r#""value":"5050""#);
    assert_line(&lines[2], r#""checks":0"#);
    // Dynamic blame, delivered as data.
    assert_line(&lines[3], r#""ok":false"#);
    assert_line(&lines[3], r#""blame":"p1""#);
    // Malformed lines (bad JSON, bad UTF-8) → error responses, session
    // continues.
    assert_line(&lines[4], r#""ok":false"#);
    assert_line(&lines[4], "bad request");
    assert_line(&lines[5], r#""ok":false"#);
    // Stats reflect the traffic.
    assert_line(&lines[6], r#""plan":2"#);
    assert_line(&lines[6], r#""errors":2"#);
    assert_line(&lines[7], r#""op":"shutdown""#);
}

fn connect_with_retry(path: &PathBuf) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "socket {} never came up: {e}",
                    path.display()
                );
                thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn request(stream: &mut UnixStream, reader: &mut BufReader<UnixStream>, line: &str) -> String {
    writeln!(stream, "{line}").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(!response.is_empty(), "connection closed on: {line}");
    response
}

/// Many concurrent clients, each interleaving its own programs — a
/// client-specific hybrid computation, a client-specific blamed
/// divergence, and plans — over one daemon with a shared disk cache.
/// Every client must get exactly its own answers back, in order.
#[test]
fn socket_stress_concurrent_clients_get_independent_results() {
    let socket = scratch("sock").with_extension("socket");
    let cache_dir = scratch("cache");
    let mut child: Child = sct()
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--threads",
            "4",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning sct serve --socket");
    // Make sure the daemon is accepting before fanning out.
    drop(connect_with_retry(&socket));

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 4;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let socket = socket.clone();
            thread::spawn(move || {
                let mut stream = connect_with_retry(&socket);
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for round in 0..ROUNDS {
                    // A value computation unique to (client, round):
                    // sum 0..n for n = 100·(c+1)+round.
                    let n = 100 * (c as u64 + 1) + round as u64;
                    let expect = n * (n + 1) / 2;
                    let hybrid = format!(
                        r#"{{"op":"hybrid","id":{c},"source":"(define (sum{c} i a) (if (zero? i) a (sum{c} (- i 1) (+ a i)))) (sum{c} {n} 0)"}}"#
                    );
                    let resp = request(&mut stream, &mut reader, &hybrid);
                    assert_line(&resp, &format!(r#""value":"{expect}""#));
                    assert_line(&resp, &format!(r#""id":{c}"#));
                    assert_line(&resp, r#""ok":true"#);

                    // A divergence blamed with a client-specific label:
                    // the blame each client sees must be its own.
                    let spin = format!(
                        r#"{{"op":"run","source":"(define f{c} (terminating/c (lambda (x) (f{c} x)) \"party-{c}\")) (f{c} 1)"}}"#
                    );
                    let resp = request(&mut stream, &mut reader, &spin);
                    assert_line(&resp, r#""ok":false"#);
                    assert_line(&resp, &format!(r#""blame":"party-{c}""#));

                    // Plans stay well-formed under concurrency.
                    let plan = format!(
                        r#"{{"op":"plan","source":"(define (len{c} l) (if (null? l) 0 (+ 1 (len{c} (cdr l)))))"}}"#
                    );
                    let resp = request(&mut stream, &mut reader, &plan);
                    assert_line(&resp, r#""ok":true"#);
                    assert_line(&resp, &format!(r#""name":"len{c}""#));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }

    // An idle client that never sends a request and never disconnects:
    // shutdown must still terminate the daemon (its blocked read is
    // unblocked by the server closing the connection).
    let _idle = connect_with_retry(&socket);

    // A warm client replaying one of the programs hits the shared cache.
    {
        let mut stream = connect_with_retry(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let replay =
            r#"{"op":"plan","source":"(define (len0 l) (if (null? l) 0 (+ 1 (len0 (cdr l)))))"}"#;
        let resp = request(&mut stream, &mut reader, replay);
        assert_line(&resp, r#""cache":{"hits":1,"misses":0,"warm":true}"#);
        let stats = request(&mut stream, &mut reader, r#"{"op":"stats"}"#);
        assert_line(&stats, r#""ok":true"#);
        // 8 clients × 4 rounds × (1 hybrid + 1 plan) + this replay touch
        // the store; the daemon must have seen real traffic.
        assert_line(&stats, r#""workers":4"#);
        let shutdown = request(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
        assert_line(&shutdown, r#""ok":true"#);
    }

    // The daemon exits cleanly after shutdown (bounded wait, then kill).
    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        match child.try_wait().unwrap() {
            Some(status) => break Some(status),
            None if Instant::now() > deadline => break None,
            None => thread::sleep(Duration::from_millis(25)),
        }
    };
    match status {
        Some(status) => assert!(status.success(), "daemon exited {status:?}"),
        None => {
            child.kill().ok();
            panic!("daemon did not exit after shutdown");
        }
    }
    std::fs::remove_dir_all(&cache_dir).ok();
    std::fs::remove_file(&socket).ok();
}

//! End-to-end incrementality: for a Figure-10-scale program, editing one
//! `define` re-verifies exactly that define — every untouched define is a
//! persisted-cache hit — and the warm plan is structurally identical to a
//! fresh one. Also pins the committed `BENCH_fig10.json` planning
//! trajectory: warm planning must be measurably faster than cold.

use sct_contracts::{plan_program_incremental, DiskCache, PlanCache, PlanConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sct-incr-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A fig10-scale program: the sweep's direct workloads side by side —
/// factorial, sum, Ackermann, and merge-sort with its helper stack — plus
/// a couple of independent list functions. 10 defines.
fn fig10_scale(sum_body_constant: i64) -> String {
    format!(
        "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))
         (define (sum i acc) (if (zero? i) (+ acc {sum_body_constant}) (sum (- i 1) (+ acc i))))
         (define (ack m n)
           (cond [(= 0 m) (+ 1 n)]
                 [(= 0 n) (ack (- m 1) 1)]
                 [else (ack (- m 1) (ack m (- n 1)))]))
         (define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
         (define (take l n) (if (or (zero? n) (null? l)) '() (cons (car l) (take (cdr l) (- n 1)))))
         (define (drop l n) (if (or (zero? n) (null? l)) l (drop (cdr l) (- n 1))))
         (define (merge a b)
           (cond [(null? a) b]
                 [(null? b) a]
                 [(< (car a) (car b)) (cons (car a) (merge (cdr a) b))]
                 [else (cons (car b) (merge a (cdr b)))]))
         (define (msort l)
           (if (or (null? l) (null? (cdr l)))
               l
               (let ([half (quotient (len l) 2)])
                 (merge (msort (take l half)) (msort (drop l half))))))
         (define (rev-app l acc) (if (null? l) acc (rev-app (cdr l) (cons (car l) acc))))
         (define (last l) (if (null? (cdr l)) (car l) (last (cdr l))))"
    )
}

#[test]
fn editing_one_define_reverifies_exactly_that_define() {
    let dir = scratch_dir("edit");
    let cfg = PlanConfig::default();

    // Cold: everything misses and lands on disk.
    let before = sct_lang::compile_program(&fig10_scale(0)).unwrap();
    let mut disk = DiskCache::open(&dir).unwrap();
    let (cold_plan, cold) =
        plan_program_incremental(&before, &cfg, &mut PlanCache::new(), &mut disk);
    assert_eq!((cold.hits(), cold.misses()), (0, 10), "{cold:?}");

    // Unchanged replay: all hits, structurally the same plan.
    let (warm_plan, warm) =
        plan_program_incremental(&before, &cfg, &mut PlanCache::new(), &mut disk);
    assert_eq!((warm.hits(), warm.misses()), (10, 0), "{warm:?}");
    assert!(cold_plan.structurally_eq(&warm_plan));

    // Edit exactly one define (sum's base constant). Nothing references
    // sum, so exactly sum must re-verify; the other nine defines hit even
    // though every λ id after sum shifted in the recompile.
    let after = sct_lang::compile_program(&fig10_scale(1)).unwrap();
    let (edited_plan, edited) =
        plan_program_incremental(&after, &cfg, &mut PlanCache::new(), &mut disk);
    assert_eq!((edited.hits(), edited.misses()), (9, 1), "{edited:?}");
    assert_eq!(edited.missed_names(), vec!["sum"], "{edited:?}");

    // The edited program's warm plan equals its fresh plan.
    let (fresh_plan, _) = plan_program_incremental(
        &after,
        &cfg,
        &mut PlanCache::new(),
        &mut sct_symbolic::NullStore,
    );
    assert!(edited_plan.structurally_eq(&fresh_plan));
    // And sum's decision survived the edit semantically: still discharged.
    assert_eq!(edited_plan.count("static"), cold_plan.count("static"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn editing_a_shared_helper_reverifies_its_dependents_only() {
    let dir = scratch_dir("helper");
    let cfg = PlanConfig::default();
    let before = fig10_scale(0);
    // `len` is read by `msort` (and by nothing else outside the msort
    // cluster): editing it must re-verify len + msort, not take/drop/
    // merge/fact/sum/ack/rev-app/last.
    let after = before.replace(
        "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))",
        "(define (len l) (if (null? l) 1 (+ 1 (len (cdr l)))))",
    );
    assert_ne!(before, after);

    let mut disk = DiskCache::open(&dir).unwrap();
    let p1 = sct_lang::compile_program(&before).unwrap();
    plan_program_incremental(&p1, &cfg, &mut PlanCache::new(), &mut disk);

    let p2 = sct_lang::compile_program(&after).unwrap();
    let (_, stats) = plan_program_incremental(&p2, &cfg, &mut PlanCache::new(), &mut disk);
    assert_eq!(stats.missed_names(), vec!["len", "msort"], "{stats:?}");
    assert_eq!(stats.hits(), 8, "{stats:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn editing_a_helper_recomputes_exactly_its_dependents_summaries() {
    // Contract summaries ride the same content address as decisions, so
    // the same invalidation frontier applies: editing `len` re-keys len
    // and its dependent msort. Of the two, only len is *summarizable*
    // (msort discharges vacuously under its Nat rung — no self-recursion
    // graphs survive, and only recursive Static defines carry a summary),
    // so exactly one new summary key must appear, and it must be len's.
    let cfg = PlanConfig::default();
    let mut store = sct_cache::MemStore::new();

    let before = sct_lang::compile_program(&fig10_scale(0)).unwrap();
    plan_program_incremental(&before, &cfg, &mut PlanCache::new(), &mut store);
    let initial: std::collections::HashMap<String, String> = store
        .summary_entries()
        .iter()
        .map(|(k, s)| (k.clone(), s.name.clone()))
        .collect();
    // The fig10-scale program's summarizable defines: every recursive
    // Static one. (ack stays monitored; msort's discharge is vacuous.)
    let mut names: Vec<&str> = initial.values().map(String::as_str).collect();
    names.sort_unstable();
    assert_eq!(
        names,
        ["drop", "fact", "last", "len", "merge", "rev-app", "sum", "take"],
        "summarizable set drifted"
    );

    let after = sct_lang::compile_program(&fig10_scale(0).replace(
        "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))",
        "(define (len l) (if (null? l) 1 (+ 1 (len (cdr l)))))",
    ))
    .unwrap();
    let (_, stats) = plan_program_incremental(&after, &cfg, &mut PlanCache::new(), &mut store);
    assert_eq!(stats.missed_names(), vec!["len", "msort"], "{stats:?}");
    let recomputed: Vec<&str> = store
        .summary_entries()
        .iter()
        .filter(|(k, _)| !initial.contains_key(*k))
        .map(|(_, s)| s.name.as_str())
        .collect();
    assert_eq!(
        recomputed,
        vec!["len"],
        "exactly the edited helper's summary recomputes"
    );
}

/// The committed benchmark artifact must carry the planning trajectory:
/// schema `sct-fig10/5` with warm planning measurably faster than cold on
/// every workload (the number the persistence subsystem exists to win) —
/// and, since PR 8, per-workload inline-cache hit rates on the eval rows.
#[test]
fn committed_bench_artifact_pins_warm_planning_speedup() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_fig10.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_fig10.json at the repo root");
    let doc = sct_contracts::core::json::parse(&text).expect("artifact parses");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("sct-fig10/5"),
        "schema drifted"
    );
    let planning = doc
        .get("planning")
        .and_then(|p| p.as_arr())
        .expect("planning array present");
    assert!(!planning.is_empty());
    for p in planning {
        let workload = p.get("workload").and_then(|w| w.as_str()).unwrap();
        let cold = p.get("plan_ms").and_then(|v| v.as_f64()).unwrap();
        let warm = p.get("plan_warm_ms").and_then(|v| v.as_f64()).unwrap();
        assert!(cold > 0.0 && warm > 0.0, "{workload}: non-positive timings");
        assert!(
            warm < cold,
            "{workload}: warm planning ({warm}ms) not faster than cold ({cold}ms)"
        );
    }
    // Schema /5: every eval row carries the inline-cache accounting, and
    // the meta-circular interpreter workloads (the only ones with hot
    // first-class dispatch) cache effectively.
    let evals = doc
        .get("eval")
        .and_then(|e| e.as_arr())
        .expect("eval array present");
    assert!(!evals.is_empty());
    for e in evals {
        let workload = e.get("workload").and_then(|w| w.as_str()).unwrap();
        let hits = e.get("pic_hits").and_then(|v| v.as_f64()).unwrap();
        let misses = e.get("pic_misses").and_then(|v| v.as_f64()).unwrap();
        let rate = e.get("pic_hit_rate").and_then(|v| v.as_f64()).unwrap();
        assert!((0.0..=1.0).contains(&rate), "{workload}: rate {rate}");
        if workload.starts_with("interp-") {
            assert!(hits + misses > 0.0, "{workload}: no generic dispatch");
            assert!(rate >= 0.9, "{workload}: ineffective caches ({rate})");
        }
    }
}

//! Chaos suite: the serve daemon under deterministic fault injection.
//!
//! Every test arms `sct-faults` failpoints and asserts the daemon's
//! robustness invariants instead of a happy path:
//!
//! * the daemon survives every armed failpoint — no request is left
//!   unanswered, no wedge, no cascading death;
//! * a panicking worker is detected immediately (satellite regression:
//!   the answer arrives in under a second, not after the 300 s pool
//!   timeout) and the pool respawns it;
//! * deadline-degraded decisions are always `monitor`, never `static`,
//!   and never persisted under content keys — a later unfaulted replay
//!   self-heals to the real verdict;
//! * the disk cache self-heals after torn and failed writes, counting
//!   the corrupt entries it quarantines.
//!
//! The failpoint registry is process-global, so in-process tests
//! serialize on [`SERIAL`]. `SCT_CHAOS_SEED` (CI runs several values)
//! varies the deterministic fault schedule of the probabilistic test.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use sct_contracts::serve::{ServeOptions, Server};
use sct_core::json::{parse, Json};

/// Serializes tests that arm the process-global failpoint registry.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    // A failed chaos test must not wedge the rest of the suite.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Seed for the probabilistic schedules; CI sweeps several values.
fn chaos_seed() -> u64 {
    std::env::var("SCT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "sct-chaos-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn respond(server: &Server, line: &str) -> Json {
    let out = server.handle_line(line);
    let response = out
        .response
        .unwrap_or_else(|| panic!("no response to {line}"));
    parse(&response).unwrap_or_else(|e| panic!("unparseable response {response}: {e}"))
}

fn ok(doc: &Json) -> bool {
    doc.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_text(doc: &Json) -> &str {
    doc.get("error").and_then(Json::as_str).unwrap_or("")
}

fn stat(doc: &Json, group: &str, key: &str) -> i64 {
    doc.get(group)
        .and_then(|g| g.get(key))
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("stats missing {group}.{key}: {doc:?}"))
}

/// Every planned function in a response, as `(decision, detail)`.
fn decisions(doc: &Json) -> Vec<(String, String)> {
    doc.get("plan")
        .and_then(|p| p.get("functions"))
        .and_then(Json::as_arr)
        .map(|fns| {
            fns.iter()
                .map(|f| {
                    (
                        f.get("decision")
                            .and_then(Json::as_str)
                            .unwrap()
                            .to_string(),
                        f.get("detail")
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_string(),
                    )
                })
                .collect()
        })
        .unwrap_or_default()
}

/// The ladder invariant: any decision degraded by a deadline must be
/// `monitor` — never `static`, never `refuted`.
fn assert_degraded_never_static(doc: &Json) {
    for (decision, detail) in decisions(doc) {
        if detail.starts_with("planning deadline exceeded") || detail.contains("worker lost") {
            assert_eq!(
                decision, "monitor",
                "degraded decision must be monitor, got {decision} ({detail})"
            );
        }
    }
}

// Two statically verifiable defines → two cache keys per pass, both
// expected to plan `static` when no fault interferes.
const COUNTDOWN: &str =
    "(define (decA n) (if (zero? n) 0 (decA (- n 1)))) (define (decB n) (if (zero? n) 0 (decB (- n 1))))";

fn plan_line(source: &str) -> String {
    format!(r#"{{"op":"plan","source":"{source}"}}"#)
}

/// Satellite regression: a worker that panics while holding a job used
/// to wedge the request for the full 300 s pool timeout. The reply
/// channel disconnect must now surface immediately with a distinct
/// error, and the pool must respawn the dead worker.
#[test]
fn worker_death_answers_fast_and_pool_respawns() {
    let _lock = serial();
    let server = Server::new(ServeOptions {
        threads: 2,
        ..ServeOptions::default()
    })
    .unwrap();
    let _armed = sct_faults::scoped("serve.pool.worker=panic*1").unwrap();

    let started = Instant::now();
    let doc = respond(&server, &plan_line(COUNTDOWN));
    let elapsed = started.elapsed();
    assert!(!ok(&doc), "a dead worker is an error, got {doc:?}");
    assert!(
        error_text(&doc).contains("worker died"),
        "distinct worker-death error, got: {}",
        error_text(&doc)
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "worker death must be detected immediately, took {elapsed:?}"
    );

    // The pool reaps and respawns before the next dispatch: the same
    // request now succeeds and the restart is visible in stats.
    let doc = respond(&server, &plan_line(COUNTDOWN));
    assert!(ok(&doc), "pool must recover after a worker death: {doc:?}");
    let stats = respond(&server, r#"{"op":"stats"}"#);
    let restarts = stats
        .get("worker_restarts")
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert!(restarts >= 1, "expected a respawn, stats: {stats:?}");
}

/// A panic *inside* the planning job is caught in the worker: the
/// request gets a recovered-panic error, the thread itself survives
/// (no restart), and the next request succeeds.
#[test]
fn panic_inside_a_job_is_recovered_in_place() {
    let _lock = serial();
    let server = Server::new(ServeOptions {
        threads: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let _armed = sct_faults::scoped("serve.pool.job=panic*1").unwrap();

    let started = Instant::now();
    let doc = respond(&server, &plan_line(COUNTDOWN));
    assert!(!ok(&doc));
    assert!(
        error_text(&doc).contains("panicked (recovered"),
        "got: {}",
        error_text(&doc)
    );
    assert!(started.elapsed() < Duration::from_secs(1));

    let doc = respond(&server, &plan_line(COUNTDOWN));
    assert!(ok(&doc), "worker must survive a caught panic: {doc:?}");
    let stats = respond(&server, r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("worker_restarts").and_then(Json::as_i64),
        Some(0),
        "in-place recovery must not cost a thread: {stats:?}"
    );
}

/// A stalled worker pushes the request past its deadline: the response
/// arrives on time anyway, degraded to `monitor` (never `static`), and
/// is not persisted — when the stalled worker eventually finishes, its
/// honest verdict lands in the store and a replay self-heals to
/// `static`.
#[test]
fn stalled_worker_degrades_on_deadline_then_selfheals() {
    let _lock = serial();
    let server = Server::new(ServeOptions {
        threads: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let _armed = sct_faults::scoped("serve.pool.job=stall-1200*1").unwrap();

    let started = Instant::now();
    let line = format!(r#"{{"op":"plan","source":"{COUNTDOWN}","deadline_ms":200}}"#);
    let doc = respond(&server, &line);
    let elapsed = started.elapsed();
    assert!(ok(&doc), "deadline degrades, never errors: {doc:?}");
    assert!(
        doc.get("degraded").and_then(Json::as_i64).unwrap_or(0) >= 1,
        "expected degraded decisions: {doc:?}"
    );
    assert_degraded_never_static(&doc);
    let all = decisions(&doc);
    assert!(
        all.iter().all(|(d, _)| d == "monitor"),
        "the single stalled chunk covers every define: {all:?}"
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "deadline must bound the wait (200ms + grace), took {elapsed:?}"
    );

    // Self-heal: the degraded verdicts were never persisted, so an
    // unbounded replay (queued behind the still-stalling worker) is
    // free to recompute the honest verdict — not poisoned by a cached
    // `monitor` — and its stores make the pass after it fully warm.
    let doc = respond(&server, &plan_line(COUNTDOWN));
    assert!(ok(&doc), "{doc:?}");
    assert!(
        decisions(&doc).iter().all(|(d, _)| d == "static"),
        "replay after the stall self-heals to the honest verdict: {doc:?}"
    );
    let doc = respond(&server, &plan_line(COUNTDOWN));
    assert!(
        doc.get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 1,
        "the honest replan must have been persisted: {doc:?}"
    );
    let stats = respond(&server, r#"{"op":"stats"}"#);
    assert!(stat(&stats, "requests", "deadline_exceeded") >= 1);
}

/// Torn and failed cache writes through the daemon: requests keep
/// succeeding, the corrupt entry is quarantined on the next load, and
/// the store converges back to warm hits.
#[test]
fn disk_cache_selfheals_after_torn_writes() {
    let _lock = serial();
    let cache_dir = scratch("cache");
    let server = Server::new(ServeOptions {
        threads: 1,
        cache_dir: Some(cache_dir.clone()),
        ..ServeOptions::default()
    })
    .unwrap();

    // Every store of the first request writes only half its bytes.
    {
        let _armed = sct_faults::scoped("cache.store.write=torn").unwrap();
        let doc = respond(&server, &plan_line(COUNTDOWN));
        assert!(ok(&doc), "torn stores must not fail the request: {doc:?}");
        assert!(decisions(&doc).iter().all(|(d, _)| d == "static"));
    }

    // Unfaulted replay: the torn entries fail to decode, get renamed to
    // quarantine, and the functions are honestly replanned and stored.
    let doc = respond(&server, &plan_line(COUNTDOWN));
    assert!(ok(&doc), "{doc:?}");
    assert!(decisions(&doc).iter().all(|(d, _)| d == "static"));
    let stats = respond(&server, r#"{"op":"stats"}"#);
    assert!(
        stat(&stats, "cache", "quarantined") >= 1,
        "torn entries must be quarantined: {stats:?}"
    );

    // Third pass: the healed store answers from disk.
    let doc = respond(&server, &plan_line(COUNTDOWN));
    assert!(
        doc.get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 1,
        "store must converge to warm hits after healing: {doc:?}"
    );

    // ENOSPC on the atomic rename: the store is skipped entirely — a
    // later request just replans; nothing corrupt is left behind.
    {
        let _armed = sct_faults::scoped("cache.store.rename=enospc").unwrap();
        let doc = respond(
            &server,
            &plan_line("(define (third n) (if (zero? n) 0 (third (- n 1))))"),
        );
        assert!(ok(&doc), "ENOSPC must not fail the request: {doc:?}");
    }
    let doc = respond(
        &server,
        &plan_line("(define (third n) (if (zero? n) 0 (third (- n 1))))"),
    );
    assert!(ok(&doc), "{doc:?}");
    assert!(decisions(&doc).iter().all(|(d, _)| d == "static"));

    std::fs::remove_dir_all(&cache_dir).ok();
}

/// The headline invariant: under a seeded mix of probabilistic faults —
/// failing cache reads and writes, stalling and panicking jobs, two
/// worker deaths — every concurrent request gets exactly one
/// well-formed answer, no degraded decision is ever `static`, and the
/// daemon still answers when the dust settles.
#[test]
fn every_request_gets_exactly_one_answer_under_probabilistic_faults() {
    let _lock = serial();
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 6;
    let seed = chaos_seed();
    let cache_dir = scratch("mixed");
    let server = Arc::new(
        Server::new(ServeOptions {
            threads: 4,
            cache_dir: Some(cache_dir.clone()),
            ..ServeOptions::default()
        })
        .unwrap(),
    );
    let spec = format!(
        "seed={seed};cache.store.write=enospc@250;cache.load.read=error@250;\
         serve.pool.job=stall-300@150;serve.pool.worker=panic*2"
    );
    let armed = sct_faults::scoped(&spec).unwrap();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                let mut answered = 0usize;
                for round in 0..ROUNDS {
                    // Unique program per (client, round) so every request
                    // does real planning work under its own cache keys.
                    let src = format!(
                        "(define (f{c}x{round} n) (if (zero? n) 0 (f{c}x{round} (- n 1))))"
                    );
                    let op = if round % 2 == 0 { "plan" } else { "hybrid" };
                    let source = if op == "hybrid" {
                        format!("{src} (f{c}x{round} 10)")
                    } else {
                        src
                    };
                    // Half the requests carry a tight deadline, racing the
                    // stall failpoint into the degradation ladder.
                    let deadline = if round % 2 == 0 {
                        r#","deadline_ms":100"#
                    } else {
                        ""
                    };
                    let line = format!(r#"{{"op":"{op}","source":"{source}"{deadline}}}"#);
                    let out = server.handle_line(&line);
                    let response = out.response.expect("every request gets an answer");
                    let doc = parse(&response)
                        .unwrap_or_else(|e| panic!("malformed answer {response}: {e}"));
                    assert!(
                        doc.get("ok").and_then(Json::as_bool).is_some(),
                        "answer must carry ok: {response}"
                    );
                    // Under faults a request may fail (worker died, panic
                    // recovered) — but a *successful* plan obeys the ladder.
                    if ok(&doc) {
                        assert_degraded_never_static(&doc);
                    }
                    answered += 1;
                }
                answered
            })
        })
        .collect();

    let mut total = 0;
    for client in clients {
        total += client.join().expect("client thread survived the chaos");
    }
    assert_eq!(total, CLIENTS * ROUNDS, "exactly one answer per request");

    drop(armed);
    // The daemon is still standing: stats answers, and a clean request
    // (workers respawned as needed) succeeds.
    let stats = respond(&server, r#"{"op":"stats"}"#);
    assert!(ok(&stats), "{stats:?}");
    let doc = respond(&server, &plan_line(COUNTDOWN));
    assert!(
        ok(&doc),
        "daemon must serve normally after the storm: {doc:?}"
    );

    // Workers may still be inside a 300 ms stall from the storm; let
    // them drain before the next test re-arms the global registry.
    drop(server);
    thread::sleep(Duration::from_millis(600));
    std::fs::remove_dir_all(&cache_dir).ok();
}

/// Load shedding under a stalled pool: a second concurrent request is
/// refused with a well-formed `shed` response while the admitted one
/// completes normally.
#[test]
fn shed_answers_wellformed_while_admitted_request_completes() {
    let _lock = serial();
    let server = Arc::new(
        Server::new(ServeOptions {
            threads: 1,
            max_queue: 1,
            ..ServeOptions::default()
        })
        .unwrap(),
    );
    let _armed = sct_faults::scoped("serve.pool.job=stall-1500*1").unwrap();

    let slow = {
        let server = Arc::clone(&server);
        thread::spawn(move || respond(&server, &plan_line(COUNTDOWN)))
    };
    // Let the slow request win admission before contending.
    thread::sleep(Duration::from_millis(400));

    let doc = respond(
        &server,
        &plan_line("(define (other n) (if (zero? n) 0 (other (- n 1))))"),
    );
    assert!(!ok(&doc), "past max_queue the request is shed: {doc:?}");
    assert_eq!(doc.get("shed").and_then(Json::as_bool), Some(true));
    assert!(
        error_text(&doc).contains("overloaded"),
        "got: {}",
        error_text(&doc)
    );

    let slow_doc = slow.join().expect("admitted request completes");
    assert!(
        ok(&slow_doc),
        "the admitted request must still answer: {slow_doc:?}"
    );

    let stats = respond(&server, r#"{"op":"stats"}"#);
    assert!(stat(&stats, "requests", "shed") >= 1);
    assert_eq!(
        stat(&stats, "requests", "errors"),
        0,
        "shedding is not an error: {stats:?}"
    );
}

/// Socket-level faults through the real binary and `--faults`: a failed
/// accept drops one connection, a failed client read drops another —
/// the daemon keeps accepting, serves a third connection normally, and
/// shuts down cleanly.
#[test]
fn daemon_binary_survives_accept_and_read_faults() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::process::{Command, Stdio};

    let socket = scratch("sock").with_extension("socket");
    let mut child = Command::new(env!("CARGO_BIN_EXE_sct"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--threads",
            "2",
            "--faults",
            "serve.accept=error*1;serve.client.read=error*1",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning sct serve --faults");

    let connect = || {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match UnixStream::connect(&socket) {
                Ok(s) => return s,
                Err(e) => {
                    assert!(
                        Instant::now() < deadline,
                        "socket {} never came up: {e}",
                        socket.display()
                    );
                    thread::sleep(Duration::from_millis(25));
                }
            }
        }
    };

    // Connection 1 is killed by the accept failpoint, connection 2 by
    // the read failpoint: both observe a clean close (EOF), never a
    // daemon crash. The fault budget is then spent.
    for expected_victim in ["accept", "read"] {
        let mut stream = connect();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // Writing may fail once the daemon has dropped its end; that is
        // the observable fault, not a test failure.
        let _ = writeln!(stream, r#"{{"op":"stats"}}"#);
        let _ = stream.flush();
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap_or(0);
        assert_eq!(
            n, 0,
            "{expected_victim} fault must close the connection, got: {line}"
        );
    }

    // Connection 3 works end to end.
    let mut stream = connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    writeln!(stream, "{}", plan_line(COUNTDOWN)).unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""ok":true"#), "got: {line}");
    writeln!(stream, r#"{{"op":"shutdown"}}"#).unwrap();
    stream.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""op":"shutdown""#), "got: {line}");

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success(), "daemon exited {status:?}");
                break;
            }
            None if Instant::now() > deadline => {
                child.kill().ok();
                panic!("daemon did not exit after shutdown");
            }
            None => thread::sleep(Duration::from_millis(25)),
        }
    }
    std::fs::remove_file(&socket).ok();
}

//! Replay of pinned fuzzer counterexamples.
//!
//! Every `.sct` file in `tests/fuzz_regressions/` is auto-discovered and
//! replayed through the oracle-free invariant harness
//! ([`sct_fuzz::check_consistency`]): VM ≡ reference walker under three
//! monitored configurations, warm re-plan ≡ cold plan, no fuel
//! exhaustion under monitoring, no blame on unconditionally discharged
//! functions, and no refutation of a program whose monitored run
//! completes cleanly.
//!
//! The directory convention (see ARCHITECTURE.md): whenever the fuzzer
//! finds a violation, its *minimized* counterexample is committed here —
//! alongside the fix — and pinned forever. File names describe the shape
//! (`machine-mismatch-seed42.sct`, `apply1.sct`, …); a leading `;`
//! comment says what broke and when. Regression sources must *apply*
//! what they define: a defined-but-never-called refuted function is
//! rejected eagerly by design, which the clean-completion check here
//! would misread as a false refutation.

use sct_fuzz::{check_consistency, FuzzConfig};
use std::path::PathBuf;

fn regressions_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fuzz_regressions")
}

#[test]
fn every_pinned_counterexample_replays_clean() {
    let dir = regressions_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "sct"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 3,
        "expected the seeded regressions in {}, found {entries:?}",
        dir.display()
    );
    let cfg = FuzzConfig::default();
    let mut failures = Vec::new();
    for path in &entries {
        let source = std::fs::read_to_string(path).expect("readable regression");
        for v in check_consistency(&source, &cfg) {
            failures.push(format!("{}: {v}", path.display()));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

/// The seeded shapes keep their *semantic* pins, not just consistency:
/// apply1 must still be blamed dynamically, and the two Isabelle shapes
/// must still complete monitored with their known values.
#[test]
fn seeded_shapes_keep_their_verdicts() {
    let dir = regressions_dir();
    let read = |name: &str| std::fs::read_to_string(dir.join(name)).expect("seeded regression");
    let apply1 = sct_contracts::run_monitored(&read("apply1.sct"));
    assert!(
        matches!(&apply1, Err(sct_contracts::EvalError::Sc(info)) if info.function == "apply1"),
        "apply1: {apply1:?}"
    );
    let bar = sct_contracts::run_monitored(&read("isabelle-bar.sct")).expect("bar terminates");
    assert_eq!(bar.to_write_string(), "3");
    let poly = sct_contracts::run_monitored(&read("isabelle-poly.sct")).expect("poly terminates");
    assert_eq!(poly.to_write_string(), "14");

    // The megamorphic tower keeps both its value and its cache shape:
    // five distinct callees through one generic site (fill + overflow of
    // the 4-way cache) and a mid-run `set!` whose epoch bump invalidates
    // the entries cached before the store changed.
    let mega = read("mega-set-rebind.sct");
    let prog = sct_contracts::lang::compile_program(&mega).expect("mega compiles");
    let mut m = sct_contracts::Machine::new(
        &prog,
        sct_contracts::MachineConfig::monitored(sct_contracts::TableStrategy::Imperative),
    );
    let v = m.run().expect("mega terminates");
    assert_eq!(v.to_write_string(), "346");
    assert!(
        m.stats.pic_misses >= 5,
        "five distinct callees through one site cannot all hit"
    );
    assert!(
        m.stats.pic_invalidations >= 1,
        "the set! rebinding must stamp out warm entries"
    );
    assert_eq!(m.stats.pic_hits + m.stats.pic_misses, m.stats.generic_calls);
}

//! Regression tests for the polymorphic inline caches on `Generic` call
//! sites — specifically the *invalidation* story: a PIC entry caches the
//! resolved fast path (skip / domain guard / monitor) stamped with the
//! installed plan's fingerprint mixed with the global-store epoch, and a
//! stale stamp must force re-resolution, never a silently cached skip.
//!
//! The scenario that motivated the stamp (and this file): an incremental
//! re-plan flips a define from `Static` to `Monitor` while a machine with
//! warm caches keeps running. If the old `Skip` entry survived, the
//! monitor would never see the calls and a genuine divergence would run
//! away unchecked — enforcement soundness, not performance, is what the
//! stamp protects.

use sct_contracts::{
    plan_program, Decision, EvalError, Machine, MachineConfig, PlanConfig, TableStrategy,
};
use std::rc::Rc;
use std::time::Duration;

/// `(f f n)` terminates for small `n` (decrements below 5) but diverges
/// for `n >= 5` (increments forever). Self-application keeps the call
/// site first-class, so it compiles to a `Generic` site with a PIC.
const SELF_APP: &str = r#"
(define (f self n)
  (if (zero? n)
      0
      (self self (if (< n 5) (- n 1) (+ n 1)))))
"#;

fn quick_plan_config() -> PlanConfig {
    let mut cfg = PlanConfig::default();
    cfg.verify.exec.step_budget = 30_000;
    cfg.time_budget = Some(Duration::from_millis(200));
    cfg
}

/// The planner's real plan for `SELF_APP`, with `f`'s decision replaced.
fn plan_with_f(decision: Decision) -> Rc<sct_contracts::EnforcementPlan> {
    let prog = sct_contracts::lang::compile_program(SELF_APP).expect("compiles");
    let mut plan = plan_program(&prog, &quick_plan_config());
    let d = plan
        .decisions
        .iter_mut()
        .find(|d| d.name == "f")
        .expect("plan has a decision for f");
    d.decision = decision;
    Rc::new(plan)
}

/// After an incremental re-plan flips `f` from `Static` to `Monitor`, the
/// stale `Skip` entry cached during the static phase must be invalidated
/// — observed via `pic_invalidations` — and the monitor must still blame
/// the divergence the new plan no longer discharges.
#[test]
fn stale_pic_entry_never_skips_after_replan_flips_static_to_monitor() {
    let prog = sct_contracts::lang::compile_program(SELF_APP).expect("compiles");
    let plan_static = plan_with_f(Decision::Static { guard: vec![] });
    let plan_monitor = plan_with_f(Decision::Monitor {
        reason: "re-plan flipped the verdict".to_string(),
    });

    let config = MachineConfig {
        plan: Some(plan_static),
        ..MachineConfig::monitored(TableStrategy::Imperative)
    };
    let mut m = Machine::new(&prog, config);
    m.run().expect("defines evaluate");
    let f = m.global("f").expect("f is defined");

    // Phase A: under the static plan the generic site caches `Skip`.
    let v = m
        .call(f.clone(), vec![f.clone(), sct_contracts::Value::int(3)])
        .expect("terminating call succeeds");
    assert_eq!(v.to_write_string(), "0");
    assert!(m.stats.pic_hits > 0, "warm cache must serve the skip path");
    assert!(
        m.stats.static_skips > 0,
        "the static plan discharges the recursion"
    );
    assert_eq!(m.stats.checks, 0, "no table checks under the static plan");
    assert_eq!(m.stats.pic_invalidations, 0);

    // Phase B: the re-plan flips f to Monitor. The cached Skip entries
    // carry the old stamp; the first generic call must re-resolve.
    m.install_plan(Some(plan_monitor));
    let r = m.call(f.clone(), vec![f, sct_contracts::Value::int(10)]);
    match r {
        Err(EvalError::Sc(info)) => {
            assert_eq!(info.function, "f", "blame names the diverging function");
        }
        other => panic!("divergence must be blamed, got {other:?}"),
    }
    assert!(
        m.stats.pic_invalidations >= 1,
        "the stale Skip entry must be stamped out, not reused"
    );
    assert!(
        m.stats.checks > 0,
        "the monitor must actually check the calls the old plan skipped"
    );
    // Accounting stays exact across the flip: every generic-site
    // application was a hit or a miss.
    assert_eq!(m.stats.pic_hits + m.stats.pic_misses, m.stats.generic_calls);
}

/// Re-installing a plan with the *same* decisions fingerprint must keep
/// the caches warm: no invalidation, no extra misses — a no-op re-plan
/// (the common incremental case) costs nothing.
#[test]
fn noop_replan_keeps_pic_caches_warm() {
    let prog = sct_contracts::lang::compile_program(SELF_APP).expect("compiles");
    let plan = plan_with_f(Decision::Static { guard: vec![] });

    let config = MachineConfig {
        plan: Some(plan.clone()),
        ..MachineConfig::monitored(TableStrategy::Imperative)
    };
    let mut m = Machine::new(&prog, config);
    m.run().expect("defines evaluate");
    let f = m.global("f").expect("f is defined");
    m.call(f.clone(), vec![f.clone(), sct_contracts::Value::int(4)])
        .expect("terminating call succeeds");
    let misses_before = m.stats.pic_misses;

    // Structurally identical plan object: same fingerprint, warm caches.
    m.install_plan(Some(plan));
    m.call(f.clone(), vec![f, sct_contracts::Value::int(4)])
        .expect("terminating call succeeds");
    assert_eq!(
        m.stats.pic_invalidations, 0,
        "no-op re-plan invalidates nothing"
    );
    assert_eq!(
        m.stats.pic_misses, misses_before,
        "second run is served entirely from the warm cache"
    );
}

/// A `set!` that rebinds a monitored global bumps the store epoch, so
/// every cached entry resolved before the store changed is re-resolved —
/// the conservative rule that keeps first-class rebinding sound without
/// tracking which global each cache observed.
#[test]
fn set_rebind_bumps_epoch_and_invalidates_pics() {
    let source = r#"
(define (g n) (if (zero? n) 0 (g (- n 1))))
(define (h n) (if (zero? n) 1 (h (- n 1))))
(define (k n) (if (zero? n) 2 (k (- n 1))))
(define (call fn n) (fn n))
(define (drive n) (+ (call g n) (call k n)))
(drive 6)
(set! g h)
(drive 6)
"#;
    let prog = sct_contracts::lang::compile_program(source).expect("compiles");
    let mut m = Machine::new(&prog, MachineConfig::monitored(TableStrategy::Imperative));
    m.run().expect("program runs clean");
    assert!(m.stats.generic_calls > 0, "call's site is first-class");
    assert!(
        m.stats.pic_invalidations >= 1,
        "the set! must stamp out entries cached before the store changed"
    );
    assert_eq!(m.stats.pic_hits + m.stats.pic_misses, m.stats.generic_calls);
}

/// The PIC identity, observed the way a dashboard would: through the
/// `sct-obs` registry snapshot after `Stats::publish`, not the machine's
/// own fields. `vm.pic_hits + vm.pic_misses == vm.generic_calls` must
/// hold in the exported numbers — the export is a faithful copy, not a
/// re-derivation that could drift.
#[test]
fn pic_identity_holds_in_the_registry_snapshot() {
    let source = r#"
(define (g n) (if (zero? n) 0 (g (- n 1))))
(define (h n) (if (zero? n) 1 (h (- n 1))))
(define (call fn n) (fn n))
(define (drive n) (+ (call g n) (call h n)))
(drive 6)
(drive 6)
"#;
    let prog = sct_contracts::lang::compile_program(source).expect("compiles");
    let mut m = Machine::new(&prog, MachineConfig::monitored(TableStrategy::Imperative));
    m.run().expect("program runs clean");
    assert!(m.stats.generic_calls > 0, "call's site is first-class");

    let registry = sct_obs::Registry::new();
    m.stats.publish(&registry);
    let snap = registry.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no {name} in snapshot"))
            .1
    };
    let (hits, misses, generic) = (
        counter("vm.pic_hits"),
        counter("vm.pic_misses"),
        counter("vm.generic_calls"),
    );
    assert!(hits > 0, "second drive is served from the warm caches");
    assert_eq!(
        hits + misses,
        generic,
        "every generic-site application is a hit or a miss, as exported"
    );
    // And the export matches the machine's own accounting exactly.
    assert_eq!(hits, m.stats.pic_hits);
    assert_eq!(misses, m.stats.pic_misses);
    assert_eq!(generic, m.stats.generic_calls);
}

//! An offline, dependency-free subset of the [criterion] benchmarking
//! API, used as a drop-in dependency because this workspace builds
//! without network access to crates.io.
//!
//! It compiles the same bench sources (`criterion_group!`/
//! `criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`) and, when run, measures each
//! benchmark with a simple calibrated loop, reporting mean wall time per
//! iteration. It does no statistical analysis, warm-up tuning, HTML
//! reports, or regression tracking.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per measured benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(200);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Measures one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        measure(&id.to_string(), routine);
        self
    }
}

/// A named collection of benchmarks; see [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Measures `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        measure(&format!("{}/{}", self.name, id), routine);
        self
    }

    /// Measures `routine` with `input` threaded through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        measure(&format!("{}/{}", self.name, id.0), |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier made of a function name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times, recording total wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn measure<F: FnMut(&mut Bencher)>(id: &str, mut routine: F) {
    // Calibrate: grow the iteration count until a sample is long enough
    // to time meaningfully, then report mean time per iteration.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed >= TARGET_MEASURE || iters >= 1 << 20 {
            let mean = b.elapsed.as_secs_f64() / iters as f64;
            println!("{id:<48} {:>12} /iter ({iters} iters)", format_time(mean));
            return;
        }
        let grow = if b.elapsed < TARGET_MEASURE / 16 {
            16
        } else {
            2
        };
        iters = iters.saturating_mul(grow);
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1}ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{:.3}s", seconds)
    }
}

/// Declares a bench group function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            $(
                $target(&mut $crate::Criterion::default());
            )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

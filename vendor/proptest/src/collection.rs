//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for generated collections. Converts from `usize`
/// (exact), `a..b`, and `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(range.start() <= range.end(), "empty vec size range");
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// Generates `Vec`s of `element` values with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

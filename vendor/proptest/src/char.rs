//! Character strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates chars in `[lo, hi]` (inclusive), skipping the surrogate gap.
pub fn range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "empty char range");
    CharRange { lo, hi }
}

/// See [`range`].
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    lo: char,
    hi: char,
}

impl Strategy for CharRange {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let span = self.hi as u32 - self.lo as u32 + 1;
        loop {
            if let Some(c) = char::from_u32(self.lo as u32 + rng.below(span.into()) as u32) {
                return c;
            }
        }
    }
}

//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::sync::Arc;

/// How many times a filtered strategy retries before declaring the filter
/// unsatisfiable.
const FILTER_RETRIES: u32 = 10_000;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value: Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Keeps only values satisfying `test`, retrying the source strategy.
    fn prop_filter<R, F>(self, whence: R, test: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            test,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves and `recurse`
    /// wraps an inner strategy into branch values, nested at most `depth`
    /// levels. The size-tuning parameters are accepted for API
    /// compatibility; depth alone bounds generation here.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            // One part leaves to two parts branches keeps trees busy while
            // the level construction hard-bounds the depth.
            current = Union::new(vec![leaf.clone(), branch.clone(), branch]).boxed();
        }
        current
    }

    /// Type-erases the strategy so differently-typed strategies can mix.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: String,
    test: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let candidate = self.source.generate(rng);
            if (self.test)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {FILTER_RETRIES} candidates in a row",
            self.whence
        );
    }
}

/// Uniform choice between type-erased strategies; built by `prop_oneof!`.
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms; at least one is required.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted, type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128).wrapping_add(rng.below_u128(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span =
                    (*self.end() as i128).wrapping_sub(*self.start() as i128) as u128 + 1;
                (*self.start() as i128).wrapping_add(rng.below_u128(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategies!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String literals act as regex strategies, proptest-style:
/// `"-?[1-9][0-9]{0,40}"` generates matching strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

//! String strategies from a practical regex subset.
//!
//! Supported: literal characters, `\`-escapes (including `\d`, `\w`,
//! `\s`), character classes with ranges and leading-`^` negation, and the
//! quantifiers `?`, `*`, `+`, `{m}`, `{m,n}`. Unsupported constructs
//! (groups, alternation, anchors) are reported as [`Error`]s.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An unbounded quantifier (`*`, `+`) generates at most this many repeats.
const UNBOUNDED_MAX: usize = 8;

/// A regex the subset parser rejected.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Compiles `pattern` into a strategy generating matching strings.
///
/// # Errors
///
/// Returns [`Error`] when `pattern` uses syntax outside the subset.
pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
    Parser {
        chars: pattern.chars().collect(),
        at: 0,
        pattern,
    }
    .parse()
}

/// See [`string_regex`].
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    atoms: Vec<Atom>,
}

#[derive(Debug, Clone)]
struct Atom {
    /// Every char this atom may produce.
    choices: Vec<char>,
    min: usize,
    max: usize,
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

struct Parser<'p> {
    chars: Vec<char>,
    at: usize,
    pattern: &'p str,
}

impl Parser<'_> {
    fn parse(mut self) -> Result<RegexStrategy, Error> {
        let mut atoms = Vec::new();
        while let Some(c) = self.next() {
            let choices = match c {
                '[' => self.class()?,
                '\\' => self.escape()?,
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(self.unsupported(&format!("`{c}` outside a class")))
                }
                '.' => (' '..='~').collect(),
                lit => vec![lit],
            };
            let (min, max) = self.quantifier()?;
            atoms.push(Atom { choices, min, max });
        }
        Ok(RegexStrategy { atoms })
    }

    fn next(&mut self) -> Option<char> {
        let c = self.chars.get(self.at).copied();
        self.at += c.is_some() as usize;
        c
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.at + ahead).copied()
    }

    fn unsupported(&self, what: &str) -> Error {
        Error(format!("unsupported regex {:?}: {what}", self.pattern))
    }

    fn escape(&mut self) -> Result<Vec<char>, Error> {
        match self.next() {
            Some('d') => Ok(('0'..='9').collect()),
            Some('w') => Ok(('a'..='z')
                .chain('A'..='Z')
                .chain('0'..='9')
                .chain(['_'])
                .collect()),
            Some('s') => Ok(vec![' ', '\t', '\n']),
            Some('n') => Ok(vec!['\n']),
            Some('t') => Ok(vec!['\t']),
            Some(lit) => Ok(vec![lit]),
            None => Err(self.unsupported("trailing backslash")),
        }
    }

    fn class(&mut self) -> Result<Vec<char>, Error> {
        let negated = self.peek(0) == Some('^');
        self.at += negated as usize;
        let mut members = Vec::new();
        loop {
            let c = match self.next() {
                None => return Err(self.unsupported("unterminated class")),
                Some(']') => break,
                Some('\\') => {
                    members.extend(self.escape()?);
                    continue;
                }
                Some(c) => c,
            };
            if self.peek(0) == Some('-') && self.peek(1).is_some_and(|after| after != ']') {
                self.at += 1;
                let hi = self.next().expect("peeked");
                if hi < c {
                    return Err(self.unsupported(&format!("inverted range {c}-{hi}")));
                }
                members.extend(c..=hi);
            } else {
                members.push(c);
            }
        }
        if negated {
            members = (' '..='~').filter(|c| !members.contains(c)).collect();
        }
        if members.is_empty() {
            return Err(self.unsupported("empty class"));
        }
        Ok(members)
    }

    fn quantifier(&mut self) -> Result<(usize, usize), Error> {
        match self.peek(0) {
            Some('?') => {
                self.at += 1;
                Ok((0, 1))
            }
            Some('*') => {
                self.at += 1;
                Ok((0, UNBOUNDED_MAX))
            }
            Some('+') => {
                self.at += 1;
                Ok((1, UNBOUNDED_MAX))
            }
            Some('{') => {
                self.at += 1;
                let mut min = String::new();
                let mut max = String::new();
                let mut into_max = false;
                loop {
                    match self.next() {
                        None => return Err(self.unsupported("unterminated quantifier")),
                        Some('}') => break,
                        Some(',') if !into_max => into_max = true,
                        Some(d) if d.is_ascii_digit() && !into_max => min.push(d),
                        Some(d) if d.is_ascii_digit() => max.push(d),
                        Some(other) => {
                            return Err(self.unsupported(&format!("`{other}` in quantifier")))
                        }
                    }
                }
                let lo: usize = min
                    .parse()
                    .map_err(|_| self.unsupported("missing quantifier minimum"))?;
                let hi = if !into_max {
                    lo
                } else if max.is_empty() {
                    lo + UNBOUNDED_MAX
                } else {
                    max.parse()
                        .map_err(|_| self.unsupported("bad quantifier maximum"))?
                };
                if hi < lo {
                    return Err(self.unsupported("inverted quantifier"));
                }
                Ok((lo, hi))
            }
            _ => Ok((1, 1)),
        }
    }
}

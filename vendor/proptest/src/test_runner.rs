//! Deterministic case runner and PRNG.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (the subset of proptest's `Config` the workspace
/// uses). Known in the prelude as `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// A recoverable per-case failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// SplitMix64: tiny, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform value in `[0, bound)` over the full 128-bit space.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Runs the cases of one property test.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// A runner for the given configuration.
    pub fn new(config: Config) -> TestRunner {
        TestRunner { config }
    }

    /// Runs `case` closures seeded from `name`; each returns the rendered
    /// inputs plus the case outcome. Panics (failing the `#[test]`) on the
    /// first case that fails, reporting seed and inputs.
    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let base = fnv1a(name.as_bytes());
        for index in 0..self.config.cases {
            let seed = base ^ (u64::from(index)).wrapping_mul(0xa076_1d64_78bd_642f);
            let mut rng = TestRng::new(seed);
            let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
            match outcome {
                Ok((_, Ok(()))) => {}
                Ok((inputs, Err(e))) => panic!(
                    "property `{name}` failed at case {index} (seed {seed:#x})\n\
                     inputs: {inputs}\n{e}"
                ),
                Err(payload) => {
                    eprintln!("property `{name}` panicked at case {index} (seed {seed:#x})");
                    resume_unwind(payload);
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

//! An offline, dependency-free subset of the [proptest] property-testing
//! API, used as a drop-in `dev-dependency` because this workspace builds
//! without network access to crates.io.
//!
//! Scope: everything the workspace's property tests use —
//!
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] macros;
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_recursive`, and `boxed`;
//! * [`arbitrary::any`] for primitive types, integer range strategies,
//!   tuple strategies, [`strategy::Just`], [`collection::vec`],
//!   [`char::range`], and regex-subset string strategies
//!   ([`string::string_regex`] and `&str as Strategy`);
//! * a deterministic [`test_runner::TestRunner`] (SplitMix64 per-case
//!   seeds derived from the test name, so failures reproduce).
//!
//! Non-goals: shrinking, persistence files, forking, and the full regex
//! language. Failing cases report the generated inputs instead of a
//! minimized counterexample.
//!
//! [proptest]: https://docs.rs/proptest

pub mod arbitrary;
pub mod char;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The items a test file gets from `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with the generated inputs) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal, like [`assert_eq!`] but recoverable
/// by the [`proptest!`] runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal, like [`assert_ne!`] but
/// recoverable by the [`proptest!`] runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`\n{}",
            left,
            format!($($fmt)+)
        );
    }};
}

/// Chooses uniformly between several strategies producing the same value
/// type. Each arm is boxed, so arms may have different strategy types.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Mirrors proptest's macro for the supported
/// shape: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(stringify!($name), |__rng| {
                $(let $binding = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($binding), " = {:?}; "),+),
                    $(&$binding),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + Debug {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Any<A> {
        *self
    }
}

impl<A> Copy for Any<A> {}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward boundary values one case in eight: property
                // failures live disproportionately at 0 / ±1 / MIN / MAX.
                if rng.chance(1, 8) {
                    const EDGES: [$t; 5] =
                        [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MIN.wrapping_add(1)];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    wide as $t
                }
            }
        }
    )+};
}

arbitrary_ints!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII; occasionally any scalar value.
        if rng.chance(7, 8) {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}

//! Meta-tests: the vendored runner must actually catch failing
//! properties (a vacuously green stub would silently disable every
//! property test in the workspace) and must be deterministic.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::{Config, TestCaseError, TestRng, TestRunner};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn failing_property_panics_with_inputs() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut runner = TestRunner::new(Config::with_cases(64));
        runner.run("always_fails", |rng| {
            let n = any::<u32>().generate(rng);
            (
                format!("n = {n:?}; "),
                Err(TestCaseError::fail("forced failure")),
            )
        });
    }));
    let message = match result {
        Ok(()) => panic!("runner accepted a failing property"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a String"),
    };
    assert!(message.contains("always_fails"), "bad message: {message}");
    assert!(message.contains("n = "), "inputs missing: {message}");
    assert!(
        message.contains("forced failure"),
        "cause missing: {message}"
    );
}

#[test]
fn generation_is_deterministic() {
    let sample = |label: &str| -> Vec<i64> {
        let mut rng = TestRng::new(0xfeed ^ label.len() as u64);
        (0..32).map(|_| any::<i64>().generate(&mut rng)).collect()
    };
    assert_eq!(sample("a"), sample("b"));
    let mut rng = TestRng::new(0xfeed);
    let different: Vec<i64> = (0..32).map(|_| any::<i64>().generate(&mut rng)).collect();
    assert_ne!(sample("a"), different, "seeds must matter");
}

#[test]
fn regex_strategies_match_their_own_patterns() {
    let mut rng = TestRng::new(42);
    for _ in 0..200 {
        let s = "-?[1-9][0-9]{0,40}".generate(&mut rng);
        assert!(!s.is_empty());
        let body = s.strip_prefix('-').unwrap_or(&s);
        assert!(body.chars().next().unwrap().is_ascii_digit());
        assert!(!body.starts_with('0'));
        assert!(body.chars().all(|c| c.is_ascii_digit()));
        assert!(body.len() <= 41);
    }
}

#[test]
fn prop_assert_failures_are_recoverable_not_panics() {
    // prop_assert! must return Err (so the runner reports inputs), not
    // panic straight through.
    fn body(x: u32) -> Result<(), TestCaseError> {
        prop_assert!(x < 1000, "x too big: {}", x);
        Ok(())
    }
    assert!(body(5).is_ok());
    assert!(body(2000).is_err());
}
